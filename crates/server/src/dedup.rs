//! Idempotency dedup cache: completed results keyed by `(tenant, req_id)`.
//!
//! A client that retries a request after a transport error cannot know
//! whether the lost attempt was executed — the reply may have died on the
//! wire *after* the side effect (a `save=1` file) was published. The
//! dedup cache closes that window: every completed `ok` result for a
//! request carrying a `req_id` is remembered for a TTL, and a second
//! arrival of the same `(tenant, req_id)` is answered from the cache with
//! `dedup=1` instead of re-executed — the save is applied exactly once.
//!
//! The cache is bounded two ways: entries expire after `ttl`, and the
//! total entry count is capped (`cap`) with oldest-first eviction, so a
//! hostile client minting fresh `req_id`s cannot balloon server memory.
//! Keys are scoped by tenant — one tenant can never replay another's
//! result, even with a colliding `req_id`.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sfc_harness::LazyCounter;

use crate::protocol::{OkHeader, RespHeader};
use crate::scheduler::Response;

static DEDUP_HITS: LazyCounter = LazyCounter::new("server.dedup.hits");
static DEDUP_INSERTS: LazyCounter = LazyCounter::new("server.dedup.inserts");
static DEDUP_EVICTIONS: LazyCounter = LazyCounter::new("server.dedup.evictions");

struct Entry {
    header: OkHeader,
    body: std::sync::Arc<[u8]>,
    inserted: Instant,
}

struct Inner {
    map: HashMap<(String, String), Entry>,
    /// Insertion order for TTL pruning and cap eviction (oldest first).
    order: VecDeque<(String, String)>,
}

/// TTL- and capacity-bounded cache of completed results.
pub struct DedupCache {
    ttl: Duration,
    cap: usize,
    inner: Mutex<Inner>,
}

/// Counters reported by [`DedupCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Retried arrivals answered from the cache.
    pub hits: u64,
    /// Completed results remembered.
    pub inserts: u64,
    /// Entries evicted by TTL or capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub resident: usize,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl DedupCache {
    /// A cache remembering completed results for `ttl`, holding at most
    /// `cap` entries.
    pub fn new(ttl: Duration, cap: usize) -> Self {
        DedupCache {
            ttl,
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
        }
    }

    /// Look up a completed result. On a hit the cached header is
    /// returned with `dedup=1` set — the caller delivers it without
    /// executing anything.
    pub fn get(&self, tenant: &str, req_id: &str) -> Option<Response> {
        let mut g = lock(&self.inner);
        Self::prune(&mut g, self.ttl);
        let entry = g.map.get(&(tenant.to_string(), req_id.to_string()))?;
        let mut header = entry.header;
        header.dedup = true;
        DEDUP_HITS.add(1);
        Some(Response {
            header: RespHeader::Ok(header),
            body: entry.body.clone(),
        })
    }

    /// Remember a completed `ok` result for `(tenant, req_id)`.
    pub fn insert(&self, tenant: &str, req_id: &str, header: OkHeader, body: std::sync::Arc<[u8]>) {
        let key = (tenant.to_string(), req_id.to_string());
        let mut g = lock(&self.inner);
        Self::prune(&mut g, self.ttl);
        while g.map.len() >= self.cap {
            let Some(oldest) = g.order.pop_front() else { break };
            if g.map.remove(&oldest).is_some() {
                DEDUP_EVICTIONS.add(1);
            }
        }
        let fresh = g
            .map
            .insert(
                key.clone(),
                Entry {
                    header,
                    body,
                    inserted: Instant::now(),
                },
            )
            .is_none();
        if fresh {
            g.order.push_back(key);
        }
        DEDUP_INSERTS.add(1);
    }

    fn prune(g: &mut Inner, ttl: Duration) {
        while let Some(key) = g.order.front() {
            let expired = g
                .map
                .get(key)
                .is_none_or(|e| e.inserted.elapsed() >= ttl);
            if !expired {
                break;
            }
            let key = key.clone();
            g.order.pop_front();
            if g.map.remove(&key).is_some() {
                DEDUP_EVICTIONS.add(1);
            }
        }
    }

    /// Current counters (process-wide, shared with the metrics registry
    /// under `server.dedup.*`) plus this instance's residency.
    pub fn stats(&self) -> DedupStats {
        DedupStats {
            hits: DEDUP_HITS.value(),
            inserts: DEDUP_INSERTS.value(),
            evictions: DEDUP_EVICTIONS.value(),
            resident: lock(&self.inner).map.len(),
        }
    }

    /// Entries currently resident.
    pub fn resident(&self) -> usize {
        lock(&self.inner).map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn body(bytes: &[u8]) -> Arc<[u8]> {
        Arc::from(bytes)
    }

    fn header(bytes: usize) -> OkHeader {
        OkHeader {
            bytes,
            whole: true,
            ..OkHeader::default()
        }
    }

    #[test]
    fn hit_returns_the_cached_body_with_dedup_set() {
        let c = DedupCache::new(Duration::from_secs(60), 8);
        assert!(c.get("t", "r1").is_none());
        c.insert("t", "r1", header(3), body(&[1, 2, 3]));
        let resp = c.get("t", "r1").expect("hit");
        match resp.header {
            RespHeader::Ok(h) => {
                assert!(h.dedup, "replayed header must carry dedup=1");
                assert_eq!(h.bytes, 3);
            }
            other => panic!("expected ok, got {other:?}"),
        }
        assert_eq!(&resp.body[..], &[1, 2, 3]);
    }

    #[test]
    fn keys_are_tenant_scoped() {
        let c = DedupCache::new(Duration::from_secs(60), 8);
        c.insert("alice", "r1", header(1), body(&[9]));
        assert!(c.get("bob", "r1").is_none(), "bob cannot replay alice's result");
        assert!(c.get("alice", "r1").is_some());
    }

    #[test]
    fn entries_expire_after_the_ttl() {
        let c = DedupCache::new(Duration::from_millis(30), 8);
        c.insert("t", "r1", header(1), body(&[1]));
        assert!(c.get("t", "r1").is_some());
        std::thread::sleep(Duration::from_millis(60));
        assert!(c.get("t", "r1").is_none(), "TTL-expired entry must not replay");
        assert_eq!(c.resident(), 0, "prune removed it");
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let c = DedupCache::new(Duration::from_secs(60), 2);
        c.insert("t", "r1", header(1), body(&[1]));
        c.insert("t", "r2", header(1), body(&[2]));
        c.insert("t", "r3", header(1), body(&[3]));
        assert!(c.get("t", "r1").is_none(), "oldest evicted at cap");
        assert!(c.get("t", "r2").is_some());
        assert!(c.get("t", "r3").is_some());
        assert_eq!(c.resident(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_duplicating_order_entries() {
        let c = DedupCache::new(Duration::from_secs(60), 4);
        c.insert("t", "r1", header(1), body(&[1]));
        c.insert("t", "r1", header(2), body(&[1, 2]));
        assert_eq!(c.resident(), 1);
        let resp = c.get("t", "r1").expect("hit");
        match resp.header {
            RespHeader::Ok(h) => assert_eq!(h.bytes, 2, "latest result wins"),
            other => panic!("expected ok, got {other:?}"),
        }
    }
}
