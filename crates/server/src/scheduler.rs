//! Tenant-fair admission and dispatch: deficit round-robin with bounded
//! queues, in-flight quotas, and pop-time cross-request coalescing.
//!
//! Every request enters through [`FairScheduler::submit`], which either
//! queues it (bounded per-tenant queue) or refuses it with a typed
//! [`Overloaded`] — the backpressure signal. Execution lanes call
//! [`FairScheduler::next`], which picks the next request by deficit
//! round-robin (Shreedhar & Varghese): each tenant's visit earns a fixed
//! `quantum` of credit, a request is served only when the tenant's
//! accumulated deficit covers its [`Request::cost`], so a tenant issuing
//! big renders drains its credit faster than one issuing small filters —
//! fairness is in work units, not request counts. A per-tenant in-flight
//! quota bounds how many lanes one tenant can hold at once, so a flooding
//! tenant can saturate its own quota but never the whole pool.
//!
//! At pop time the scheduler coalesces: every queued request (any tenant)
//! whose [`Request::work_key`] equals the popped one's rides along as a
//! passenger and is answered by the same execution. Passengers ride free —
//! only the primary tenant's deficit is charged — which is deliberate:
//! coalesced work costs the service one execution, so charging each
//! passenger would bill tenants for work that never happened.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use sfc_harness::CancelToken;

use crate::protocol::{Request, RespHeader};

/// A finished request's reply: header line plus binary body, shared
/// (`Arc`) so coalesced waiters don't copy the payload per tenant.
#[derive(Debug, Clone)]
pub struct Response {
    /// The header line.
    pub header: RespHeader,
    /// The binary body (`bytes=` of the header names its length).
    pub body: Arc<[u8]>,
}

impl Response {
    /// A body-less response (errors, sheds).
    pub fn header_only(header: RespHeader) -> Self {
        Response {
            header,
            body: Arc::from([] as [u8; 0]),
        }
    }
}

/// Typed admission refusal: the client is told which bound it hit and
/// where it stands, so a well-behaved client can back off intelligently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Overloaded {
    /// Tenant whose bound refused the request.
    pub tenant: String,
    /// `queue-full` (backpressure) or `draining` (shutdown in progress).
    pub reason: &'static str,
    /// Requests currently queued for the tenant.
    pub queued: usize,
    /// The refused bound.
    pub limit: usize,
}

impl Overloaded {
    /// The wire header for this refusal.
    pub fn header(&self) -> RespHeader {
        RespHeader::Overloaded {
            tenant: self.tenant.clone(),
            reason: self.reason.to_string(),
            queued: self.queued,
            limit: self.limit,
        }
    }
}

#[derive(Debug)]
struct TicketInner {
    slot: Mutex<Option<Response>>,
    cv: Condvar,
}

/// The submitter's handle to a queued request: a cancel token (fire it
/// when the client disconnects) and a slot the response arrives in.
#[derive(Debug)]
pub struct Ticket {
    /// Cancels this waiter: a queued request is silently dropped, an
    /// executing one contributes to the job's cancellation vote (the
    /// reaper fires the run token once every waiter has cancelled).
    pub token: CancelToken,
    inner: Arc<TicketInner>,
}

impl Ticket {
    /// Wait up to `timeout` for the response.
    pub fn wait(&self, timeout: Duration) -> Option<Response> {
        let deadline = Instant::now() + timeout;
        let mut slot = lock(&self.inner.slot);
        loop {
            if let Some(resp) = slot.take() {
                return Some(resp);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self
                .inner
                .cv
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slot = g;
        }
    }
}

/// One waiter attached to a job: where its reply goes and its cancel
/// token. The primary waiter is index 0; coalesced passengers follow.
pub struct Waiter {
    /// Tenant this waiter is accounted to.
    pub tenant: String,
    /// The waiter's cancel token (fired by the net layer on disconnect).
    pub token: CancelToken,
    inner: Arc<TicketInner>,
}

impl Waiter {
    /// Deliver the response to this waiter.
    pub fn deliver(&self, resp: Response) {
        let mut slot = lock(&self.inner.slot);
        *slot = Some(resp);
        self.inner.cv.notify_all();
    }
}

/// A scheduled unit of execution: one request plus every waiter it
/// answers. Call [`FairScheduler::finish`] when done (success or not) to
/// release the primary tenant's quota slot.
pub struct Job {
    /// The request to execute (the primary's).
    pub req: Request,
    /// Run-scoped cancel token, wired into the engine's
    /// `SupervisorConfig::cancel`; the service's reaper fires it once
    /// every waiter has cancelled.
    pub token: CancelToken,
    /// All waiters, primary first.
    pub waiters: Vec<Waiter>,
    /// When the primary request was admitted — the zero point of its
    /// `deadline_ms` budget (queue wait counts against the deadline).
    pub submitted: Instant,
    tenant: String,
}

impl Job {
    /// Deliver `resp` to every waiter.
    pub fn deliver_all(&self, resp: &Response) {
        for w in &self.waiters {
            w.deliver(resp.clone());
        }
    }

    /// True once every waiter has cancelled (nobody is listening).
    pub fn abandoned(&self) -> bool {
        self.waiters.iter().all(|w| w.token.is_cancelled())
    }
}

struct Pending {
    req: Request,
    waiter: Waiter,
    submitted: Instant,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Running,
    Draining,
    Stopped,
}

struct TenantState {
    queue: VecDeque<Pending>,
    deficit: u64,
    inflight: usize,
    in_ring: bool,
}

struct SchedInner {
    tenants: HashMap<String, TenantState>,
    ring: VecDeque<String>,
    state: State,
}

/// Scheduler tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Per-tenant queue bound; submits beyond it are refused
    /// (`overloaded reason=queue-full`).
    pub queue_cap: usize,
    /// Per-tenant in-flight bound: at most this many of a tenant's
    /// requests execute concurrently.
    pub quota: usize,
    /// Deficit credit earned per eligible round-robin visit, in work
    /// units (see [`Request::cost`]).
    pub quantum: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            queue_cap: 8,
            quota: 2,
            quantum: 256,
        }
    }
}

/// Monotonic scheduler counters (reported by the `stats` verb).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Requests admitted to a queue.
    pub submitted: u64,
    /// Jobs handed to execution lanes.
    pub served: u64,
    /// Passengers answered by another request's execution.
    pub coalesced: u64,
    /// Submits refused with `overloaded`.
    pub overloaded: u64,
    /// Queued requests answered with a `shed` header at drain time.
    pub shed: u64,
    /// Queued requests dropped because their waiter cancelled first.
    pub abandoned: u64,
}

enum Pop {
    Job(Box<Job>),
    /// Work exists and deficit is still accruing — retry immediately.
    Retry,
    /// Nothing serveable until external progress (finish / submit).
    Wait,
}

/// The tenant-fair scheduler. One instance is shared by the acceptor
/// threads (producers) and the execution lanes (consumers).
pub struct FairScheduler {
    cfg: SchedConfig,
    inner: Mutex<SchedInner>,
    cv: Condvar,
    submitted: AtomicU64,
    served: AtomicU64,
    coalesced: AtomicU64,
    overloaded: AtomicU64,
    shed: AtomicU64,
    abandoned: AtomicU64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl FairScheduler {
    /// A scheduler with the given bounds.
    pub fn new(cfg: SchedConfig) -> Self {
        FairScheduler {
            cfg,
            inner: Mutex::new(SchedInner {
                tenants: HashMap::new(),
                ring: VecDeque::new(),
                state: State::Running,
            }),
            cv: Condvar::new(),
            submitted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
        }
    }

    /// Admit `req` or refuse it with a typed [`Overloaded`].
    pub fn submit(&self, req: Request) -> Result<Ticket, Overloaded> {
        let mut g = lock(&self.inner);
        let tenant = req.tenant.clone();
        if g.state != State::Running {
            self.overloaded.fetch_add(1, Ordering::Relaxed);
            let queued = g.tenants.get(&tenant).map_or(0, |t| t.queue.len());
            return Err(Overloaded {
                tenant,
                reason: "draining",
                queued,
                limit: 0,
            });
        }
        let st = g.tenants.entry(tenant.clone()).or_insert_with(|| TenantState {
            queue: VecDeque::new(),
            deficit: 0,
            inflight: 0,
            in_ring: false,
        });
        if st.queue.len() >= self.cfg.queue_cap {
            self.overloaded.fetch_add(1, Ordering::Relaxed);
            let queued = st.queue.len();
            return Err(Overloaded {
                tenant,
                reason: "queue-full",
                queued,
                limit: self.cfg.queue_cap,
            });
        }
        let inner = Arc::new(TicketInner {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        let token = CancelToken::new();
        st.queue.push_back(Pending {
            req,
            waiter: Waiter {
                tenant: tenant.clone(),
                token: token.clone(),
                inner: inner.clone(),
            },
            submitted: Instant::now(),
        });
        if !st.in_ring {
            st.in_ring = true;
            g.ring.push_back(tenant);
        }
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_all();
        Ok(Ticket { token, inner })
    }

    /// Block until a job is available. Returns `None` once the scheduler
    /// is stopped, or once it is draining and every queue is empty —
    /// execution lanes use that as their exit signal.
    pub fn next(&self) -> Option<Job> {
        let mut g = lock(&self.inner);
        loop {
            if g.state == State::Stopped {
                return None;
            }
            match self.pop_locked(&mut g) {
                Pop::Job(job) => return Some(*job),
                Pop::Retry => continue,
                Pop::Wait => {
                    let queued: usize = g.tenants.values().map(|t| t.queue.len()).sum();
                    if g.state == State::Draining && queued == 0 {
                        return None;
                    }
                    let (guard, _) = self
                        .cv
                        .wait_timeout(g, Duration::from_millis(50))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    g = guard;
                }
            }
        }
    }

    /// Non-blocking [`FairScheduler::next`]: a job now, or `None`.
    pub fn try_next(&self) -> Option<Job> {
        let mut g = lock(&self.inner);
        loop {
            if g.state == State::Stopped {
                return None;
            }
            match self.pop_locked(&mut g) {
                Pop::Job(job) => return Some(*job),
                Pop::Retry => continue,
                Pop::Wait => return None,
            }
        }
    }

    /// One deficit-round-robin pass over the tenant ring.
    fn pop_locked(&self, g: &mut SchedInner) -> Pop {
        let mut deficit_starved = false;
        for _ in 0..g.ring.len() {
            let Some(tenant) = g.ring.pop_front() else { break };
            let Some(st) = g.tenants.get_mut(&tenant) else { continue };

            // Drop queued entries whose waiter has already cancelled
            // (client disconnected while waiting in line).
            while st
                .queue
                .front()
                .is_some_and(|p| p.waiter.token.is_cancelled())
            {
                st.queue.pop_front();
                self.abandoned.fetch_add(1, Ordering::Relaxed);
            }
            if st.queue.is_empty() {
                // Leave the ring; deficit resets so idle time cannot be
                // banked into a later burst (classic DRR).
                st.in_ring = false;
                st.deficit = 0;
                continue;
            }
            if st.inflight >= self.cfg.quota {
                // Quota-blocked visits earn no credit: quota time must
                // not be banked as deficit either.
                g.ring.push_back(tenant);
                continue;
            }
            st.deficit += self.cfg.quantum;
            let cost = st.queue[0].req.cost();
            if st.deficit < cost {
                deficit_starved = true;
                g.ring.push_back(tenant);
                continue;
            }
            st.deficit -= cost;
            st.inflight += 1;
            let Some(primary) = st.queue.pop_front() else { continue };
            if st.queue.is_empty() {
                st.in_ring = false;
                st.deficit = 0;
            } else {
                g.ring.push_back(tenant.clone());
            }

            // Coalesce: collect every queued request (any tenant, not
            // yet cancelled) computing the same bytes.
            let mut waiters = vec![primary.waiter];
            if let Some(key) = primary.req.work_key() {
                for st in g.tenants.values_mut() {
                    let mut i = 0;
                    while i < st.queue.len() {
                        let rides = !st.queue[i].waiter.token.is_cancelled()
                            && st.queue[i].req.work_key().as_deref() == Some(key.as_str());
                        if rides {
                            if let Some(p) = st.queue.remove(i) {
                                waiters.push(p.waiter);
                                self.coalesced.fetch_add(1, Ordering::Relaxed);
                            }
                        } else {
                            i += 1;
                        }
                    }
                }
            }
            self.served.fetch_add(1, Ordering::Relaxed);
            return Pop::Job(Box::new(Job {
                req: primary.req,
                token: CancelToken::new(),
                waiters,
                submitted: primary.submitted,
                tenant,
            }));
        }
        if deficit_starved {
            Pop::Retry
        } else {
            Pop::Wait
        }
    }

    /// Release the quota slot held by `job` and wake waiting lanes.
    pub fn finish(&self, job: &Job) {
        let mut g = lock(&self.inner);
        if let Some(st) = g.tenants.get_mut(&job.tenant) {
            st.inflight = st.inflight.saturating_sub(1);
        }
        self.cv.notify_all();
    }

    /// Stop admitting; queued work may still be served.
    pub fn begin_drain(&self) {
        let mut g = lock(&self.inner);
        if g.state == State::Running {
            g.state = State::Draining;
        }
        self.cv.notify_all();
    }

    /// Answer every still-queued request with a typed `shed` header and
    /// empty the queues (drain budget exhausted). Returns how many were
    /// shed.
    pub fn shed_all(&self, reason: &str) -> usize {
        let mut g = lock(&self.inner);
        let mut n = 0;
        for st in g.tenants.values_mut() {
            while let Some(p) = st.queue.pop_front() {
                p.waiter.deliver(Response::header_only(RespHeader::Shed {
                    reason: reason.to_string(),
                }));
                n += 1;
            }
            st.in_ring = false;
            st.deficit = 0;
        }
        g.ring.clear();
        self.shed.fetch_add(n as u64, Ordering::Relaxed);
        self.cv.notify_all();
        n
    }

    /// Stop the scheduler: `next` returns `None` immediately.
    pub fn stop(&self) {
        lock(&self.inner).state = State::Stopped;
        self.cv.notify_all();
    }

    /// Total requests currently queued across all tenants.
    pub fn queued_total(&self) -> usize {
        lock(&self.inner).tenants.values().map(|t| t.queue.len()).sum()
    }

    /// Current counters.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tenant: &str, seed: u64) -> Request {
        Request::parse(&format!("filter tenant={tenant} size=8 seed={seed} radius=1"))
            .expect("valid request")
    }

    fn cfg() -> SchedConfig {
        SchedConfig {
            queue_cap: 8,
            quota: 8,
            // One 8³ filter costs 64 units; a quantum covering it means
            // every eligible visit serves, isolating round-robin order.
            quantum: 64,
        }
    }

    #[test]
    fn round_robin_interleaves_a_flooder_with_a_light_tenant() {
        let s = FairScheduler::new(cfg());
        let mut tickets = Vec::new();
        for seed in 0..6 {
            tickets.push(s.submit(req("flood", seed)).expect("admit"));
        }
        for seed in 100..102 {
            tickets.push(s.submit(req("calm", seed)).expect("admit"));
        }
        let order: Vec<String> = std::iter::from_fn(|| s.try_next())
            .map(|j| {
                s.finish(&j);
                j.req.tenant.clone()
            })
            .collect();
        assert_eq!(order.len(), 8);
        // Both of calm's requests are served within the first four pops
        // even though flood queued first and six deep.
        let calm_served: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, t)| t.as_str() == "calm")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(calm_served.len(), 2, "order: {order:?}");
        assert!(calm_served[1] <= 3, "order: {order:?}");
    }

    #[test]
    fn deficit_charges_big_requests_more_than_small_ones() {
        // "big" submits 32³-pencil filters (1024 units), "small" 8³
        // (64 units). With quantum=64 a big request needs 16 visits of
        // credit, so small gets many requests through per big one.
        let s = FairScheduler::new(SchedConfig {
            queue_cap: 16,
            quota: 16,
            quantum: 64,
        });
        let mut tickets = Vec::new();
        for seed in 0..2 {
            let r = Request::parse(&format!(
                "filter tenant=big size=32 seed={seed} radius=1"
            ))
            .expect("valid request");
            tickets.push(s.submit(r).expect("admit"));
        }
        for seed in 0..8 {
            tickets.push(s.submit(req("small", seed)).expect("admit"));
        }
        let order: Vec<String> = std::iter::from_fn(|| s.try_next())
            .map(|j| {
                s.finish(&j);
                j.req.tenant.clone()
            })
            .collect();
        assert_eq!(order.len(), 10);
        // All eight small requests clear before the second big one.
        let last_small = order.iter().rposition(|t| t == "small").expect("small served");
        let second_big = order
            .iter()
            .enumerate()
            .filter(|(_, t)| t.as_str() == "big")
            .map(|(i, _)| i)
            .nth(1)
            .expect("both big served");
        assert!(last_small < second_big, "order: {order:?}");
    }

    #[test]
    fn queue_bound_refuses_with_typed_overload() {
        let s = FairScheduler::new(SchedConfig {
            queue_cap: 2,
            ..cfg()
        });
        let _t0 = s.submit(req("a", 0)).expect("admit");
        let _t1 = s.submit(req("a", 1)).expect("admit");
        let err = s.submit(req("a", 2)).expect_err("refused");
        assert_eq!(err.reason, "queue-full");
        assert_eq!((err.queued, err.limit), (2, 2));
        // Another tenant's queue is unaffected.
        assert!(s.submit(req("b", 0)).is_ok());
        assert_eq!(s.stats().overloaded, 1);
    }

    #[test]
    fn quota_caps_one_tenants_concurrency() {
        let s = FairScheduler::new(SchedConfig {
            quota: 1,
            ..cfg()
        });
        // Distinct seeds per request so nothing coalesces and the test
        // isolates pure quota behavior.
        let _ta = [s.submit(req("a", 0)).expect("admit"), s.submit(req("a", 1)).expect("admit")];
        let _tb = s.submit(req("b", 100)).expect("admit");
        let j1 = s.try_next().expect("first job");
        assert_eq!(j1.req.tenant, "a");
        let j2 = s.try_next().expect("second job");
        assert_eq!(j2.req.tenant, "b", "a is quota-blocked, b is not");
        assert!(s.try_next().is_none(), "a's second request stays blocked");
        s.finish(&j1);
        let j3 = s.try_next().expect("a's slot freed");
        assert_eq!(j3.req.tenant, "a");
    }

    #[test]
    fn identical_requests_coalesce_across_tenants() {
        let s = FairScheduler::new(cfg());
        let ta = s.submit(req("a", 7)).expect("admit");
        let tb = s.submit(req("b", 7)).expect("admit"); // same work
        let _tc = s.submit(req("c", 8)).expect("admit"); // different work
        let job = s.try_next().expect("job");
        assert_eq!(job.waiters.len(), 2, "b rides along with a");
        let resp = Response::header_only(RespHeader::Shed {
            reason: "test".into(),
        });
        job.deliver_all(&resp);
        s.finish(&job);
        assert!(ta.wait(Duration::from_secs(1)).is_some());
        assert!(tb.wait(Duration::from_secs(1)).is_some());
        assert_eq!(s.stats().coalesced, 1);
        // c still gets its own execution.
        let j2 = s.try_next().expect("c's job");
        assert_eq!(j2.req.tenant, "c");
        assert_eq!(j2.waiters.len(), 1);
    }

    #[test]
    fn save_requests_never_coalesce() {
        let s = FairScheduler::new(cfg());
        let line = "filter tenant=a size=8 seed=7 radius=1 save=1";
        let _t0 = s.submit(Request::parse(line).expect("valid")).expect("admit");
        let _t1 = s
            .submit(Request::parse(&line.replace("tenant=a", "tenant=b")).expect("valid"))
            .expect("admit");
        let job = s.try_next().expect("job");
        assert_eq!(job.waiters.len(), 1);
        s.finish(&job);
        assert!(s.try_next().is_some(), "second save executes separately");
    }

    #[test]
    fn cancelled_queued_requests_are_dropped_not_served() {
        let s = FairScheduler::new(cfg());
        let ta = s.submit(req("a", 0)).expect("admit");
        let _tb = s.submit(req("b", 0)).expect("admit");
        ta.token.cancel();
        let job = s.try_next().expect("job");
        assert_eq!(job.req.tenant, "b", "a's abandoned request is skipped");
        assert_eq!(s.stats().abandoned, 1);
    }

    #[test]
    fn drain_refuses_new_work_and_shed_answers_the_queue() {
        let s = FairScheduler::new(cfg());
        let t0 = s.submit(req("a", 0)).expect("admit");
        s.begin_drain();
        let err = s.submit(req("a", 1)).expect_err("draining refuses");
        assert_eq!(err.reason, "draining");
        let n = s.shed_all("drain budget exhausted");
        assert_eq!(n, 1);
        let resp = t0.wait(Duration::from_secs(1)).expect("shed reply");
        assert!(matches!(resp.header, RespHeader::Shed { .. }));
        assert!(s.next().is_none(), "draining + empty ends the lanes");
    }

    #[test]
    fn stop_ends_next_immediately() {
        let s = Arc::new(FairScheduler::new(cfg()));
        let s2 = s.clone();
        let h = std::thread::spawn(move || s2.next());
        std::thread::sleep(Duration::from_millis(20));
        s.stop();
        assert!(h.join().expect("lane thread").is_none());
    }
}
