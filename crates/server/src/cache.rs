//! Layout-aware shared volume cache with residency accounting.
//!
//! Requests name their input volume by `(size, layout, seed)` rather than
//! uploading it, so concurrent requests touching the same volume share
//! one resident copy per layout — the cross-request data-movement win the
//! space-filling-curve literature describes (PAPERS.md, Walker &
//! Skjellum): units from different requests walk the *same* curve-ordered
//! bytes instead of private duplicates. The cache accounts residency in
//! bytes, serves under a budget with LRU eviction, and exposes
//! hit/miss/eviction counters so overload investigations can tell "cold
//! cache" from "slow kernel".
//!
//! Eviction drops the cache's reference; an executing request keeps its
//! `Arc` alive until it finishes, so eviction never invalidates in-flight
//! work (resident-byte accounting tracks the cache's references only).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sfc_core::{ArrayOrder3, Dims3, Grid3, HilbertOrder3, Tiled3, ZOrder3};
use sfc_datagen::{mri_phantom, PhantomParams};

use crate::protocol::LayoutChoice;

/// Cache key: everything that determines the volume's bytes and layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VolumeKey {
    /// Cubic volume edge.
    pub size: usize,
    /// Memory layout the grid is materialized in.
    pub layout: LayoutChoice,
    /// Seed of the deterministic synthetic phantom.
    pub seed: u64,
}

/// One resident volume, materialized in its requested layout.
#[derive(Debug)]
pub enum CachedVolume {
    /// Row-major array order.
    Array(Grid3<f32, ArrayOrder3>),
    /// Morton (Z-order) curve.
    Z(Grid3<f32, ZOrder3>),
    /// Tiled (blocked) order.
    Tiled(Grid3<f32, Tiled3>),
    /// Hilbert curve.
    Hilbert(Grid3<f32, HilbertOrder3>),
}

impl CachedVolume {
    /// Materialize the phantom volume for `key` in its layout.
    pub fn build(key: &VolumeKey) -> Self {
        let dims = Dims3::cube(key.size);
        let values = mri_phantom(dims, key.seed, PhantomParams::default());
        match key.layout {
            LayoutChoice::Array => CachedVolume::Array(Grid3::from_row_major(dims, &values)),
            LayoutChoice::Z => CachedVolume::Z(Grid3::from_row_major(dims, &values)),
            LayoutChoice::Tiled => CachedVolume::Tiled(Grid3::from_row_major(dims, &values)),
            LayoutChoice::Hilbert => CachedVolume::Hilbert(Grid3::from_row_major(dims, &values)),
        }
    }

    /// Logical dimensions of the volume.
    pub fn dims(&self) -> Dims3 {
        match self {
            CachedVolume::Array(g) => g.dims(),
            CachedVolume::Z(g) => g.dims(),
            CachedVolume::Tiled(g) => g.dims(),
            CachedVolume::Hilbert(g) => g.dims(),
        }
    }

    /// Nominal payload bytes (logical voxels × 4; curve layouts may pad
    /// their backing store, which residency accounting treats as free).
    pub fn bytes(&self) -> usize {
        self.dims().len() * 4
    }
}

/// Residency and traffic counters, all monotonic except `resident_bytes`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered by a resident volume.
    pub hits: u64,
    /// Lookups that had to materialize the volume.
    pub misses: u64,
    /// Volumes evicted to stay under the byte budget.
    pub evictions: u64,
    /// Bytes currently resident (cache references only).
    pub resident_bytes: usize,
    /// Volumes currently resident.
    pub resident: usize,
}

struct CacheInner {
    map: HashMap<VolumeKey, (Arc<CachedVolume>, u64)>,
    resident_bytes: usize,
    tick: u64,
}

/// The shared, budgeted volume cache.
pub struct VolumeCache {
    inner: Mutex<CacheInner>,
    budget_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl VolumeCache {
    /// A cache bounded to roughly `budget_bytes` of resident volumes. At
    /// least one volume stays resident regardless of the budget (the one
    /// just built), so a tiny budget degrades to "no reuse", never to a
    /// failure.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                resident_bytes: 0,
                tick: 0,
            }),
            budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Fetch the volume for `key`, materializing (and possibly evicting)
    /// on miss. Returns the volume and whether it was a hit.
    pub fn get(&self, key: &VolumeKey) -> (Arc<CachedVolume>, bool) {
        {
            let mut g = self.lock();
            g.tick += 1;
            let tick = g.tick;
            if let Some((vol, last_used)) = g.map.get_mut(key) {
                *last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (vol.clone(), true);
            }
        }
        // Materialize outside the lock: building a volume is the slow
        // path and must not serialize unrelated lookups. Two racing
        // misses may build twice; the loser's copy is dropped.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(CachedVolume::build(key));
        let bytes = built.bytes();
        let mut g = self.lock();
        g.tick += 1;
        let tick = g.tick;
        let vol = match g.map.get_mut(key) {
            Some((vol, last_used)) => {
                *last_used = tick;
                vol.clone()
            }
            None => {
                g.resident_bytes += bytes;
                g.map.insert(*key, (built.clone(), tick));
                built
            }
        };
        // LRU eviction down to the budget, never evicting the volume we
        // are about to hand out.
        while g.resident_bytes > self.budget_bytes && g.map.len() > 1 {
            let victim = g
                .map
                .iter()
                .filter(|(k, _)| *k != key)
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some((evicted, _)) = g.map.remove(&victim) {
                g.resident_bytes -= evicted.bytes();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        (vol, false)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let g = self.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: g.resident_bytes,
            resident: g.map.len(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(size: usize, seed: u64) -> VolumeKey {
        VolumeKey {
            size,
            layout: LayoutChoice::Z,
            seed,
        }
    }

    #[test]
    fn hit_returns_the_same_volume() {
        let cache = VolumeCache::new(1 << 20);
        let (a, hit_a) = cache.get(&key(8, 1));
        let (b, hit_b) = cache.get(&key(8, 1));
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.resident), (1, 1, 1));
        assert_eq!(s.resident_bytes, 8 * 8 * 8 * 4);
    }

    #[test]
    fn layouts_are_distinct_entries() {
        let cache = VolumeCache::new(1 << 20);
        for layout in LayoutChoice::ALL {
            let (_, hit) = cache.get(&VolumeKey { size: 4, layout, seed: 9 });
            assert!(!hit);
        }
        assert_eq!(cache.stats().resident, 4);
    }

    #[test]
    fn budget_evicts_lru_but_keeps_inflight_arcs_valid() {
        // Budget fits one 8³ volume; the second insert evicts the first.
        let one = 8 * 8 * 8 * 4;
        let cache = VolumeCache::new(one);
        let (a, _) = cache.get(&key(8, 1));
        let (_b, _) = cache.get(&key(8, 2));
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident, 1);
        assert!(s.resident_bytes <= one);
        // The evicted volume is still usable through its Arc.
        assert_eq!(a.dims(), Dims3::cube(8));
        // Re-fetching the evicted key is a miss that rebuilds it.
        let (a2, hit) = cache.get(&key(8, 1));
        assert!(!hit);
        assert_eq!(a2.dims(), Dims3::cube(8));
    }
}
