//! Layout-aware shared volume cache with residency accounting.
//!
//! Requests name their input volume by `(size, layout, seed)` rather than
//! uploading it, so concurrent requests touching the same volume share
//! one resident copy per layout — the cross-request data-movement win the
//! space-filling-curve literature describes (PAPERS.md, Walker &
//! Skjellum): units from different requests walk the *same* curve-ordered
//! bytes instead of private duplicates. The cache accounts residency in
//! bytes, serves under a budget with LRU eviction, and exposes
//! hit/miss/eviction counters so overload investigations can tell "cold
//! cache" from "slow kernel".
//!
//! Eviction drops the cache's reference; an executing request keeps its
//! `Arc` alive until it finishes, so eviction never invalidates in-flight
//! work (resident-byte accounting tracks the cache's references only).
//!
//! With a spill directory configured ([`VolumeCache::with_spill`]) the
//! cache gains a disk tier: evicted volumes are written to a crash-safe
//! [`BrickStore`] and faulted back from it on the next miss, skipping
//! re-materialization. The spill tier is strictly best-effort — a spill
//! store that is missing, corrupt, or degraded (poisoned bricks) is
//! discarded and the volume is rebuilt deterministically from its seed,
//! counted in `spill_corrupt`.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sfc_core::{ArrayOrder3, Dims3, Grid3, HilbertOrder3, LayoutKind, Tiled3, ZOrder3};
use sfc_datagen::bricks::insert_brick;
use sfc_datagen::{mri_phantom, PhantomParams};
use sfc_store::{BrickStore, StoreOptions, MANIFEST_FILE};

use crate::protocol::LayoutChoice;

/// Brick edge used for spilled volumes.
const SPILL_BRICK_EDGE: usize = 8;

/// Cache key: everything that determines the volume's bytes and layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VolumeKey {
    /// Cubic volume edge.
    pub size: usize,
    /// Memory layout the grid is materialized in.
    pub layout: LayoutChoice,
    /// Seed of the deterministic synthetic phantom.
    pub seed: u64,
}

/// One resident volume, materialized in its requested layout.
#[derive(Debug)]
pub enum CachedVolume {
    /// Row-major array order.
    Array(Grid3<f32, ArrayOrder3>),
    /// Morton (Z-order) curve.
    Z(Grid3<f32, ZOrder3>),
    /// Tiled (blocked) order.
    Tiled(Grid3<f32, Tiled3>),
    /// Hilbert curve.
    Hilbert(Grid3<f32, HilbertOrder3>),
}

impl CachedVolume {
    /// Materialize the phantom volume for `key` in its layout.
    pub fn build(key: &VolumeKey) -> Self {
        let dims = Dims3::cube(key.size);
        let values = mri_phantom(dims, key.seed, PhantomParams::default());
        match key.layout {
            LayoutChoice::Array => CachedVolume::Array(Grid3::from_row_major(dims, &values)),
            LayoutChoice::Z => CachedVolume::Z(Grid3::from_row_major(dims, &values)),
            LayoutChoice::Tiled => CachedVolume::Tiled(Grid3::from_row_major(dims, &values)),
            LayoutChoice::Hilbert => CachedVolume::Hilbert(Grid3::from_row_major(dims, &values)),
        }
    }

    /// Logical dimensions of the volume.
    pub fn dims(&self) -> Dims3 {
        match self {
            CachedVolume::Array(g) => g.dims(),
            CachedVolume::Z(g) => g.dims(),
            CachedVolume::Tiled(g) => g.dims(),
            CachedVolume::Hilbert(g) => g.dims(),
        }
    }

    /// Nominal payload bytes (logical voxels × 4; curve layouts may pad
    /// their backing store, which residency accounting treats as free).
    pub fn bytes(&self) -> usize {
        self.dims().len() * 4
    }

    /// Rebuild from row-major values (the spill-tier read path).
    fn from_row_major(key: &VolumeKey, values: &[f32]) -> Self {
        let dims = Dims3::cube(key.size);
        match key.layout {
            LayoutChoice::Array => CachedVolume::Array(Grid3::from_row_major(dims, values)),
            LayoutChoice::Z => CachedVolume::Z(Grid3::from_row_major(dims, values)),
            LayoutChoice::Tiled => CachedVolume::Tiled(Grid3::from_row_major(dims, values)),
            LayoutChoice::Hilbert => {
                CachedVolume::Hilbert(Grid3::from_row_major(dims, values))
            }
        }
    }
}

fn brick_order(layout: LayoutChoice) -> LayoutKind {
    match layout {
        LayoutChoice::Array => LayoutKind::ArrayOrder,
        LayoutChoice::Z => LayoutKind::ZOrder,
        LayoutChoice::Tiled => LayoutKind::Tiled,
        LayoutChoice::Hilbert => LayoutKind::Hilbert,
    }
}

/// Stable per-volume spill subdirectory name.
fn spill_name(key: &VolumeKey) -> String {
    format!("{}-{}-{}", key.size, key.layout.name(), key.seed)
}

/// Residency and traffic counters, all monotonic except `resident_bytes`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered by a resident volume.
    pub hits: u64,
    /// Lookups that had to materialize the volume.
    pub misses: u64,
    /// Volumes evicted to stay under the byte budget.
    pub evictions: u64,
    /// Evicted volumes written to the spill store.
    pub spills: u64,
    /// Misses served from the spill store instead of re-materializing.
    pub spill_hits: u64,
    /// Spill stores found corrupt/degraded and discarded (the volume was
    /// rebuilt deterministically from its seed).
    pub spill_corrupt: u64,
    /// Bytes currently resident (cache references only).
    pub resident_bytes: usize,
    /// Volumes currently resident.
    pub resident: usize,
}

struct CacheInner {
    map: HashMap<VolumeKey, (Arc<CachedVolume>, u64)>,
    resident_bytes: usize,
    tick: u64,
}

/// The shared, budgeted volume cache.
pub struct VolumeCache {
    inner: Mutex<CacheInner>,
    budget_bytes: usize,
    spill_dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    spills: AtomicU64,
    spill_hits: AtomicU64,
    spill_corrupt: AtomicU64,
}

impl VolumeCache {
    /// A cache bounded to roughly `budget_bytes` of resident volumes. At
    /// least one volume stays resident regardless of the budget (the one
    /// just built), so a tiny budget degrades to "no reuse", never to a
    /// failure.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                resident_bytes: 0,
                tick: 0,
            }),
            budget_bytes,
            spill_dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            spill_hits: AtomicU64::new(0),
            spill_corrupt: AtomicU64::new(0),
        }
    }

    /// Like [`VolumeCache::new`], plus a spill directory: evicted
    /// volumes are persisted as crash-safe brick stores under `dir` and
    /// faulted back on demand instead of being re-materialized.
    pub fn with_spill(budget_bytes: usize, dir: PathBuf) -> Self {
        Self {
            spill_dir: Some(dir),
            ..Self::new(budget_bytes)
        }
    }

    /// Fetch the volume for `key`, materializing (and possibly evicting)
    /// on miss. Returns the volume and whether it was a hit.
    pub fn get(&self, key: &VolumeKey) -> (Arc<CachedVolume>, bool) {
        {
            let mut g = self.lock();
            g.tick += 1;
            let tick = g.tick;
            if let Some((vol, last_used)) = g.map.get_mut(key) {
                *last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (vol.clone(), true);
            }
        }
        // Materialize outside the lock: building a volume is the slow
        // path and must not serialize unrelated lookups. Two racing
        // misses may build twice; the loser's copy is dropped — and the
        // incumbent's residency bytes are kept, never re-added, so a
        // coalesced insert cannot double-count (see the regression test).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(self.materialize(key));
        let bytes = built.bytes();
        let mut g = self.lock();
        g.tick += 1;
        let tick = g.tick;
        let vol = match g.map.get_mut(key) {
            Some((vol, last_used)) => {
                *last_used = tick;
                vol.clone()
            }
            None => {
                g.resident_bytes += bytes;
                g.map.insert(*key, (built.clone(), tick));
                built
            }
        };
        // LRU eviction down to the budget, never evicting the volume we
        // are about to hand out. Victims are collected under the lock but
        // spilled to disk after it drops — spill IO must not serialize
        // unrelated lookups.
        let mut victims: Vec<(VolumeKey, Arc<CachedVolume>)> = Vec::new();
        while g.resident_bytes > self.budget_bytes && g.map.len() > 1 {
            let victim = g
                .map
                .iter()
                .filter(|(k, _)| *k != key)
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some((evicted, _)) = g.map.remove(&victim) {
                g.resident_bytes -= evicted.bytes();
                self.evictions.fetch_add(1, Ordering::Relaxed);
                victims.push((victim, evicted));
            }
        }
        drop(g);
        for (vkey, vvol) in victims {
            self.spill_write(&vkey, &vvol);
        }
        (vol, false)
    }

    /// Build the volume for `key`: from the spill store when an intact
    /// copy exists there, deterministically from the seed otherwise.
    fn materialize(&self, key: &VolumeKey) -> CachedVolume {
        if let Some(values) = self.spill_read(key) {
            self.spill_hits.fetch_add(1, Ordering::Relaxed);
            return CachedVolume::from_row_major(key, &values);
        }
        CachedVolume::build(key)
    }

    /// Try to load an intact row-major copy from the spill store.
    /// Anything less than fully intact — no store, corrupt manifest,
    /// poisoned bricks — discards the spill (counted) and returns `None`.
    fn spill_read(&self, key: &VolumeKey) -> Option<Vec<f32>> {
        let dir = self.spill_dir.as_ref()?.join(spill_name(key));
        if !dir.join(MANIFEST_FILE).exists() {
            return None;
        }
        let discard = |cache: &Self| {
            cache.spill_corrupt.fetch_add(1, Ordering::Relaxed);
            std::fs::remove_dir_all(&dir).ok();
            None
        };
        let Ok(store) = BrickStore::open(&dir, StoreOptions::default()) else {
            return discard(self);
        };
        let dims = Dims3::cube(key.size);
        if store.geom().dims() != dims {
            return discard(self);
        }
        let geom = *store.geom();
        let mut values = vec![0.0f32; dims.len()];
        for id in 0..geom.brick_count() {
            let brick = store.brick(id);
            insert_brick(&geom, id, &brick, &mut values);
        }
        // A brick that survived neither retry nor read-repair arrived as
        // NaN poison; the phantom is deterministic, so rebuilding beats
        // serving damaged data.
        if !store.defective_bricks().is_empty() {
            return discard(self);
        }
        Some(values)
    }

    /// Persist an evicted volume to the spill store (best-effort: spill
    /// failures only mean the next miss re-materializes). A volume
    /// already spilled from an earlier eviction is not rewritten — the
    /// contents are deterministic per key.
    fn spill_write(&self, key: &VolumeKey, vol: &CachedVolume) {
        let Some(base) = self.spill_dir.as_ref() else {
            return;
        };
        let dir = base.join(spill_name(key));
        if dir.join(MANIFEST_FILE).exists() {
            return;
        }
        let order = brick_order(key.layout);
        let opts = StoreOptions::default();
        let res = match vol {
            CachedVolume::Array(g) => BrickStore::import(&dir, g, SPILL_BRICK_EDGE, order, opts),
            CachedVolume::Z(g) => BrickStore::import(&dir, g, SPILL_BRICK_EDGE, order, opts),
            CachedVolume::Tiled(g) => BrickStore::import(&dir, g, SPILL_BRICK_EDGE, order, opts),
            CachedVolume::Hilbert(g) => {
                BrickStore::import(&dir, g, SPILL_BRICK_EDGE, order, opts)
            }
        };
        if res.is_ok() {
            self.spills.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let g = self.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            spills: self.spills.load(Ordering::Relaxed),
            spill_hits: self.spill_hits.load(Ordering::Relaxed),
            spill_corrupt: self.spill_corrupt.load(Ordering::Relaxed),
            resident_bytes: g.resident_bytes,
            resident: g.map.len(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(size: usize, seed: u64) -> VolumeKey {
        VolumeKey {
            size,
            layout: LayoutChoice::Z,
            seed,
        }
    }

    #[test]
    fn hit_returns_the_same_volume() {
        let cache = VolumeCache::new(1 << 20);
        let (a, hit_a) = cache.get(&key(8, 1));
        let (b, hit_b) = cache.get(&key(8, 1));
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.resident), (1, 1, 1));
        assert_eq!(s.resident_bytes, 8 * 8 * 8 * 4);
    }

    #[test]
    fn layouts_are_distinct_entries() {
        let cache = VolumeCache::new(1 << 20);
        for layout in LayoutChoice::ALL {
            let (_, hit) = cache.get(&VolumeKey { size: 4, layout, seed: 9 });
            assert!(!hit);
        }
        assert_eq!(cache.stats().resident, 4);
    }

    #[test]
    fn coalesced_inserts_never_double_count_residency() {
        // Regression: many threads miss on the same key simultaneously;
        // every loser must adopt the incumbent entry without re-adding
        // its bytes, and residency must equal exactly one copy.
        let one = 8 * 8 * 8 * 4;
        let cache = VolumeCache::new(64 << 20);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = &cache;
                s.spawn(move || {
                    for round in 0..4u64 {
                        let (vol, _) = cache.get(&key(8, round % 2));
                        assert_eq!(vol.dims(), Dims3::cube(8));
                    }
                });
            }
        });
        let st = cache.stats();
        assert_eq!(st.resident, 2, "{st:?}");
        assert_eq!(st.resident_bytes, 2 * one, "double-counted residency: {st:?}");
        assert_eq!(st.evictions, 0);
        // Drain-to-budget sanity: inserting a third key under a
        // two-volume budget evicts exactly one and the books still
        // balance.
        let cache2 = VolumeCache::new(2 * one);
        for seed in 0..3 {
            cache2.get(&key(8, seed));
        }
        let st2 = cache2.stats();
        assert_eq!(st2.resident, 2);
        assert_eq!(st2.resident_bytes, 2 * one, "{st2:?}");
        assert_eq!(st2.evictions, 1);
    }

    #[test]
    fn eviction_spills_and_the_next_miss_faults_back_from_disk() {
        let dir = std::env::temp_dir()
            .join(format!("sfc_cache_spill_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let one = 8 * 8 * 8 * 4;
        let cache = VolumeCache::with_spill(one, dir.clone());
        let (a, _) = cache.get(&key(8, 1));
        cache.get(&key(8, 2)); // evicts seed 1 → spilled
        let st = cache.stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.spills, 1, "{st:?}");
        // Refetch seed 1: a miss, but served from the spill store.
        let (a2, hit) = cache.get(&key(8, 1));
        assert!(!hit);
        assert_eq!(cache.stats().spill_hits, 1);
        // Spilled-and-restored volume is bitwise identical.
        for (i, j, k) in Dims3::cube(8).iter() {
            let (va, vb) = match (&*a, &*a2) {
                (CachedVolume::Z(ga), CachedVolume::Z(gb)) => {
                    (ga.get(i, j, k), gb.get(i, j, k))
                }
                _ => panic!("layout changed"),
            };
            assert_eq!(va.to_bits(), vb.to_bits(), "({i},{j},{k})");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_spill_store_is_discarded_and_rebuilt() {
        let dir = std::env::temp_dir()
            .join(format!("sfc_cache_spillbad_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let one = 8 * 8 * 8 * 4;
        let cache = VolumeCache::with_spill(one, dir.clone());
        let (orig, _) = cache.get(&key(8, 1));
        cache.get(&key(8, 2)); // spill seed 1
        // Destroy the spilled manifest's integrity.
        let sub = dir.join(spill_name(&key(8, 1)));
        let manifest = sub.join(MANIFEST_FILE);
        sfc_harness::faults::flip_bit(&manifest, 16, 4).unwrap();
        let (rebuilt, hit) = cache.get(&key(8, 1));
        assert!(!hit);
        let st = cache.stats();
        assert_eq!(st.spill_corrupt, 1, "{st:?}");
        assert_eq!(st.spill_hits, 0, "corrupt spill must not count as a spill hit");
        assert!(!sub.join(MANIFEST_FILE).exists(), "corrupt spill store removed");
        // The rebuild is deterministic: bitwise equal to the original.
        match (&*orig, &*rebuilt) {
            (CachedVolume::Z(ga), CachedVolume::Z(gb)) => {
                for (i, j, k) in Dims3::cube(8).iter() {
                    assert_eq!(ga.get(i, j, k).to_bits(), gb.get(i, j, k).to_bits());
                }
            }
            _ => panic!("layout changed"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_evicts_lru_but_keeps_inflight_arcs_valid() {
        // Budget fits one 8³ volume; the second insert evicts the first.
        let one = 8 * 8 * 8 * 4;
        let cache = VolumeCache::new(one);
        let (a, _) = cache.get(&key(8, 1));
        let (_b, _) = cache.get(&key(8, 2));
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident, 1);
        assert!(s.resident_bytes <= one);
        // The evicted volume is still usable through its Arc.
        assert_eq!(a.dims(), Dims3::cube(8));
        // Re-fetching the evicted key is a miss that rebuilds it.
        let (a2, hit) = cache.get(&key(8, 1));
        assert!(!hit);
        assert_eq!(a2.dims(), Dims3::cube(8));
    }
}
