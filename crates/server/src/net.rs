//! TCP front end: thread-per-connection accept loop, per-connection
//! read/write timeouts, disconnect detection, and the shutdown verb.
//!
//! Each connection is one request/response conversation (pipelining is
//! just the next line). While a submitted request waits for its reply,
//! the handler alternates between polling the ticket and peeking the
//! socket: a zero-byte peek means the client hung up, and the handler
//! fires the request's cancel token — the service's reaper then cancels
//! the run once every waiter is gone. This is the "client disconnect
//! cancels in-flight work" leg of the lifecycle, and it costs nothing on
//! the happy path (the peek is non-blocking).
//!
//! The accept loop is non-blocking and polls a shutdown flag, so a
//! `shutdown` verb (or SIGTERM in the binary) stops admission within one
//! poll interval; the caller then runs [`Service::drain`].

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::protocol::{error_kind, RespHeader, Request, MAX_LINE};
use crate::scheduler::{Response, Ticket};
use crate::service::{Admission, Service};

/// Front-end tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection socket read timeout (an idle or wedged client
    /// cannot hold a handler thread forever).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Accept-loop poll interval (bounds shutdown latency).
    pub poll: Duration,
    /// Ticket poll interval while waiting for a reply (bounds disconnect
    /// detection latency at the net layer).
    pub ticket_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            poll: Duration::from_millis(10),
            ticket_poll: Duration::from_millis(10),
        }
    }
}

/// The TCP server: owns the listener and the shutdown flag.
pub struct Server {
    listener: TcpListener,
    svc: Arc<Service>,
    cfg: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str, svc: Arc<Service>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            svc,
            cfg,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops the accept loop when set (SIGTERM handler,
    /// `shutdown` verb, tests).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Accept connections until the shutdown flag is set. Handler
    /// threads are detached; they exit on client close, read timeout, or
    /// when the draining service refuses their next request.
    pub fn run(&self) -> std::io::Result<()> {
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let svc = self.svc.clone();
                    let cfg = self.cfg.clone();
                    let flag = self.shutdown.clone();
                    let _ = std::thread::Builder::new()
                        .name("sfc-conn".into())
                        .spawn(move || {
                            let _ = handle_conn(stream, &svc, &cfg, &flag);
                        });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(self.cfg.poll);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Serve one connection until EOF, error, or a rejected line limit.
pub fn handle_conn(
    stream: TcpStream,
    svc: &Arc<Service>,
    cfg: &ServerConfig,
    shutdown: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let mut line = String::new();
    loop {
        line.clear();
        // A line longer than MAX_LINE is rejected without reading the
        // rest: fill_buf lets us inspect without committing to an
        // unbounded read_line allocation.
        match read_bounded_line(&mut reader, &mut line) {
            Ok(0) => return Ok(()), // EOF: client done
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Idle past the read timeout: drop the connection.
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match trimmed {
            "ping" => {
                stream.write_all(b"pong\n")?;
                continue;
            }
            "stats" => {
                stream.write_all(svc.stats_line().as_bytes())?;
                stream.write_all(b"\n")?;
                continue;
            }
            "metrics" => {
                // Prometheus text is multi-line, so it is framed like a
                // binary body: a `metrics bytes=N` header line, then N
                // bytes of exposition text.
                let body = svc.prometheus_text();
                stream.write_all(format!("metrics bytes={}\n", body.len()).as_bytes())?;
                stream.write_all(body.as_bytes())?;
                stream.flush()?;
                continue;
            }
            "shutdown" => {
                stream.write_all(b"ok draining\n")?;
                shutdown.store(true, Ordering::Relaxed);
                continue;
            }
            _ => {}
        }
        let req = match Request::parse(trimmed) {
            Ok(req) => req,
            Err(err) => {
                let header = RespHeader::Err {
                    kind: error_kind(&err).to_string(),
                    message: err.to_string(),
                };
                stream.write_all(header.format().as_bytes())?;
                stream.write_all(b"\n")?;
                continue;
            }
        };
        let ticket = match svc.admit(req) {
            Ok(Admission::Ticket(t)) => t,
            Ok(Admission::Cached(resp)) => {
                // Idempotent replay: the dedup cache already holds this
                // (tenant, req_id)'s completed result.
                stream.write_all(resp.header.format().as_bytes())?;
                stream.write_all(b"\n")?;
                if !resp.body.is_empty() {
                    stream.write_all(&resp.body)?;
                }
                stream.flush()?;
                continue;
            }
            Err(over) => {
                stream.write_all(over.header().format().as_bytes())?;
                stream.write_all(b"\n")?;
                continue;
            }
        };
        match await_reply(&stream, &ticket, cfg) {
            Some(resp) => {
                stream.write_all(resp.header.format().as_bytes())?;
                stream.write_all(b"\n")?;
                if !resp.body.is_empty() {
                    stream.write_all(&resp.body)?;
                }
                stream.flush()?;
            }
            None => return Ok(()), // client disconnected; request cancelled
        }
    }
}

/// Read one `\n`-terminated line, refusing to buffer more than
/// [`MAX_LINE`] bytes. Returns the byte count (0 at EOF).
fn read_bounded_line(reader: &mut BufReader<TcpStream>, line: &mut String) -> std::io::Result<usize> {
    let mut taken = reader.by_ref().take(MAX_LINE as u64 + 1);
    let mut buf = Vec::new();
    let n = taken.read_until(b'\n', &mut buf)?;
    if n > MAX_LINE {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            "request line exceeds MAX_LINE",
        ));
    }
    *line = String::from_utf8_lossy(&buf).into_owned();
    Ok(n)
}

/// Poll the ticket for the reply while watching the socket for a client
/// disconnect. Returns `None` (after firing the waiter's cancel token)
/// if the client hung up first.
fn await_reply(stream: &TcpStream, ticket: &Ticket, cfg: &ServerConfig) -> Option<Response> {
    let mut watch_peer = true;
    loop {
        if let Some(resp) = ticket.wait(cfg.ticket_poll) {
            return Some(resp);
        }
        if watch_peer {
            match peek_disconnect(stream) {
                Peer::Gone => {
                    ticket.token.cancel();
                    return None;
                }
                Peer::DataWaiting => {
                    // Pipelined bytes are queued: the client is alive and
                    // a peek can no longer distinguish close-after-send,
                    // so stop watching and just wait for the reply.
                    watch_peer = false;
                }
                Peer::Quiet => {}
            }
        }
    }
}

enum Peer {
    Quiet,
    DataWaiting,
    Gone,
}

fn peek_disconnect(stream: &TcpStream) -> Peer {
    let mut byte = [0u8; 1];
    if stream.set_nonblocking(true).is_err() {
        return Peer::Quiet;
    }
    let peeked = stream.peek(&mut byte);
    let _ = stream.set_nonblocking(false);
    match peeked {
        Ok(0) => Peer::Gone,
        Ok(_) => Peer::DataWaiting,
        Err(e) if e.kind() == ErrorKind::WouldBlock => Peer::Quiet,
        Err(_) => Peer::Gone,
    }
}
