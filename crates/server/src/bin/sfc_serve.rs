//! `sfc_serve` — the multi-tenant volume service binary.
//!
//! ```text
//! sfc_serve --addr 127.0.0.1:7070 --threads 2 --lanes 2 \
//!           --data-dir /tmp/sfc-data --journal /tmp/sfc-data/journal.bin
//! ```
//!
//! Prints `listening addr=<ip:port>` once the socket is bound (CI and
//! tests scrape this line for the ephemeral port). Shuts down on SIGTERM
//! or the `shutdown` verb: the accept loop stops, the service drains
//! in-flight work inside `--drain-ms`, sheds the rest with typed `shed`
//! replies, and exits 0 if the drain was clean.
//!
//! `--check-journal PATH` replays a journal and exits instead of
//! serving: exit 0 when the journal opens cleanly (a truncated torn tail
//! from a crash is clean by design — it is the crash-consistency
//! contract, not an error), printing the record count and any bytes
//! truncated.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use sfc_harness::{Args, Journal};
use sfc_server::{SchedConfig, Server, ServerConfig, Service, ServiceConfig};

/// SIGTERM/SIGINT handling without a signals dependency: the raw
/// `signal(2)` C ABI is stable on every unix libc, and the handler only
/// stores to a static atomic (async-signal-safe).
#[cfg(unix)]
mod sig {
    use super::*;

    pub static TERM: AtomicBool = AtomicBool::new(false);

    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
            signal(SIGINT, on_term as *const () as usize);
        }
    }
}

fn main() {
    let args = Args::from_env();

    if let Some(path) = args.get("check-journal") {
        match Journal::open(path) {
            Ok((_, rec)) => {
                println!(
                    "journal ok records={} truncated_bytes={}",
                    rec.records.len(),
                    rec.truncated_bytes
                );
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("journal error: {e}");
                std::process::exit(1);
            }
        }
    }

    let addr = args.get_str("addr", "127.0.0.1:0").to_string();
    let svc_cfg = ServiceConfig {
        exec_threads: args.get_usize("threads", 2),
        lanes: args.get_usize("lanes", 2),
        sched: SchedConfig {
            queue_cap: args.get_usize("queue-cap", 8),
            quota: args.get_usize("quota", 2),
            quantum: args.get_u64("quantum", 256),
        },
        cache_bytes: (args.get_usize("cache-mb", 64)) << 20,
        spill_dir: args.get("spill-dir").map(Into::into),
        data_dir: args.get("data-dir").map(Into::into),
        journal: args.get("journal").map(Into::into),
        unit_timeout: Duration::from_millis(args.get_u64("unit-timeout-ms", 250)),
        reaper_poll: Duration::from_millis(args.get_u64("reaper-poll-ms", 5)),
        dedup_ttl: Duration::from_millis(args.get_u64("dedup-ttl-ms", 60_000)),
        dedup_cap: args.get_usize("dedup-cap", 1024),
    };
    let drain_budget = Duration::from_millis(args.get_u64("drain-ms", 2000));
    let net_cfg = ServerConfig {
        read_timeout: Duration::from_millis(args.get_u64("read-timeout-ms", 30_000)),
        write_timeout: Duration::from_millis(args.get_u64("write-timeout-ms", 30_000)),
        ..ServerConfig::default()
    };

    let svc = match Service::start(svc_cfg) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("startup error: {e}");
            std::process::exit(1);
        }
    };
    if let Some(rec) = svc.recovery() {
        if rec.was_torn() {
            eprintln!(
                "journal recovered records={} truncated_bytes={}",
                rec.records.len(),
                rec.truncated_bytes
            );
        }
    }

    let server = match Server::bind(&addr, svc.clone(), net_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind error ({addr}): {e}");
            std::process::exit(1);
        }
    };
    let bound = server.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    println!("listening addr={bound}");

    #[cfg(unix)]
    {
        sig::install();
        // Bridge the signal flag to the server's shutdown flag so the
        // accept loop notices within one poll interval.
        let flag = server.shutdown_flag();
        std::thread::spawn(move || loop {
            if sig::TERM.load(Ordering::Relaxed) {
                flag.store(true, Ordering::Relaxed);
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        });
    }

    if let Err(e) = server.run() {
        eprintln!("accept loop error: {e}");
    }

    let report = svc.drain(drain_budget);
    eprintln!(
        "drained clean={} shed={} cancelled={}",
        report.clean, report.shed, report.cancelled
    );
    std::process::exit(if report.clean { 0 } else { 2 });
}
