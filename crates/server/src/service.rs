//! The service core: execution lanes over one shared engine, a reaper
//! for abandoned requests, a durability journal, and graceful drain.
//!
//! Request lifecycle (see DESIGN.md §9): a parsed [`Request`] is admitted
//! by the [`FairScheduler`], popped by an execution lane, and run through
//! the engine's full brownout stack — `ExecPolicy::Brownout` with the
//! request's [`DeadlineBudget`] and fault plan — so one code path serves
//! both the happy case (no budget, no faults: bitwise-identical to
//! `ExecPolicy::Plain` by the engine contract) and the degraded one.
//! Every lane iteration is wrapped in `catch_unwind`: a panic anywhere in
//! request handling becomes a typed `err worker-panic` reply for that
//! request, never a dead lane.
//!
//! A reaper thread watches in-flight jobs: once every waiter's cancel
//! token has fired (all clients disconnected), it fires the job's
//! run-scoped token and the engine abandons the remaining units as
//! `Cancelled` — compute stops within one reaper poll plus one unit.
//!
//! Drain ([`Service::drain`]) stops admission, lets queued and in-flight
//! work finish inside the budget, then sheds what remains with typed
//! `shed` replies and cancels in-flight runs. Durability is append-only:
//! the journal fsyncs per record and saved volumes go through
//! `write_atomic`, so a `kill -9` at any instant leaves no partial file —
//! at worst a torn journal tail, which `Journal::open` truncates away.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sfc_core::{ArrayOrder3, Axis, Dims3, Grid3, SfcResult, StencilOrder};
use sfc_datagen::save_volume;
use sfc_filters::{try_bilateral3d_with_policy, BilateralParams, FilterRun};
use sfc_harness::metrics::{self, Registry, Sampler, Snapshot};
use sfc_harness::{
    CancelToken, DeadlineBudget, DegradedOutcome, DowngradeReason, ExecPolicy, Executor,
    FaultPlan, Journal, JournalRecovery, LazyCounter, Schedule, SupervisorConfig,
};
use sfc_volrend::{
    render_with_policy, vec3, Camera, Image, Projection, RenderOpts, TransferFunction,
};

use crate::cache::{VolumeCache, VolumeKey};
use crate::dedup::DedupCache;
use crate::protocol::{error_kind, f32_bytes, OkHeader, OpKind, Request, RespHeader};
use crate::scheduler::{FairScheduler, Job, Overloaded, Response, SchedConfig, Ticket};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads the engine uses per request execution.
    pub exec_threads: usize,
    /// Concurrent request executions (lane threads).
    pub lanes: usize,
    /// Scheduler bounds (queues, quotas, quantum).
    pub sched: SchedConfig,
    /// Volume-cache residency budget in bytes.
    pub cache_bytes: usize,
    /// Spill directory for the cache's disk tier: evicted volumes are
    /// persisted as crash-safe brick stores there and faulted back on
    /// demand. `None` disables spilling (evictions just drop).
    pub spill_dir: Option<PathBuf>,
    /// Where `save=1` results are written; `None` rejects saves.
    pub data_dir: Option<PathBuf>,
    /// Durability journal path; `None` disables journaling.
    pub journal: Option<PathBuf>,
    /// Per-unit watchdog budget, armed only when a request carries
    /// faults or a deadline (the fault-free path must stay
    /// bitwise-identical to `ExecPolicy::Plain`, and the watchdog is
    /// pure overhead there).
    pub unit_timeout: Duration,
    /// Reaper scan interval — the bound on how long an abandoned
    /// request keeps computing after its last client disconnects.
    pub reaper_poll: Duration,
    /// How long a completed result is remembered for idempotent retry
    /// (`req_id=` dedup). Must exceed a client's worst-case retry span
    /// (attempts × backoff cap) for exactly-once `save=1` semantics.
    pub dedup_ttl: Duration,
    /// Upper bound on remembered results (oldest evicted past it).
    pub dedup_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            exec_threads: 2,
            lanes: 2,
            sched: SchedConfig::default(),
            cache_bytes: 64 << 20,
            spill_dir: None,
            data_dir: None,
            journal: None,
            unit_timeout: Duration::from_millis(250),
            reaper_poll: Duration::from_millis(5),
            dedup_ttl: Duration::from_secs(60),
            dedup_cap: 1024,
        }
    }
}

/// What admission decided for a request (see [`Service::admit`]).
pub enum Admission {
    /// The request was queued; the reply arrives through the ticket.
    Ticket(Ticket),
    /// A completed result for this `(tenant, req_id)` was already
    /// cached — the response is ready now, nothing was queued, and the
    /// header carries `dedup=1`.
    Cached(Response),
}

/// What [`Service::drain`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether every queued and in-flight request finished inside the
    /// budget (nothing was shed or cancelled).
    pub clean: bool,
    /// Queued requests answered with `shed` at budget expiry.
    pub shed: usize,
    /// In-flight runs cancelled at budget expiry.
    pub cancelled: usize,
}

struct ActiveJob {
    run: CancelToken,
    waiters: Vec<CancelToken>,
}

/// Process-wide mirror of lane panics (per-instance accounting stays in
/// `Service::panics`; the registry counter is cumulative across all
/// services in the process).
static PANICS_TOTAL: LazyCounter = LazyCounter::new("server.lane_panics");

/// Requests whose deadline had already expired when a lane picked them
/// up — refused with a typed `expired` header, no compute spent.
static EXPIRED_TOTAL: LazyCounter = LazyCounter::new("server.expired");

/// Arrivals carrying `attempt>1` — retried deliveries observed by this
/// process (whether or not they hit the dedup cache).
static RETRY_ARRIVALS: LazyCounter = LazyCounter::new("server.retry_arrivals");

/// How often the service's [`Sampler`] folds polled state (active
/// requests, cache residency, scheduler totals) into the global registry.
const SAMPLE_INTERVAL: Duration = Duration::from_millis(100);

/// The multi-tenant volume service: scheduler + lanes + cache + journal.
pub struct Service {
    cfg: ServiceConfig,
    exec: Executor,
    sched: FairScheduler,
    cache: VolumeCache,
    dedup: DedupCache,
    journal: Option<Mutex<Journal>>,
    recovery: Option<JournalRecovery>,
    active: Mutex<Vec<(u64, ActiveJob)>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    running: AtomicBool,
    next_id: AtomicU64,
    save_seq: AtomicU64,
    panics: AtomicU64,
    sampler: Mutex<Option<Sampler>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Service {
    /// Start the service: open the journal (recovering any torn tail),
    /// spawn the execution lanes and the reaper.
    pub fn start(cfg: ServiceConfig) -> SfcResult<Arc<Service>> {
        if let Some(dir) = &cfg.data_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| sfc_core::SfcError::io(dir.display().to_string(), e))?;
        }
        let (journal, recovery) = match &cfg.journal {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)
                        .map_err(|e| sfc_core::SfcError::io(parent.display().to_string(), e))?;
                }
                let (j, rec) = Journal::open(path)
                    .map_err(|e| sfc_core::SfcError::io(path.display().to_string(), e))?;
                (Some(Mutex::new(j)), Some(rec))
            }
            None => (None, None),
        };
        let svc = Arc::new(Service {
            exec: Executor::new(cfg.exec_threads),
            sched: FairScheduler::new(cfg.sched),
            cache: match cfg.spill_dir.clone() {
                Some(dir) => VolumeCache::with_spill(cfg.cache_bytes, dir),
                None => VolumeCache::new(cfg.cache_bytes),
            },
            dedup: DedupCache::new(cfg.dedup_ttl, cfg.dedup_cap),
            journal,
            recovery,
            active: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
            running: AtomicBool::new(true),
            next_id: AtomicU64::new(0),
            save_seq: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            sampler: Mutex::new(None),
            cfg,
        });
        let mut threads = Vec::new();
        for lane in 0..svc.cfg.lanes {
            let s = svc.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("sfc-lane-{lane}"))
                    .spawn(move || s.lane_loop())
                    .map_err(|e| sfc_core::SfcError::io("spawn lane", e))?,
            );
        }
        {
            let s = svc.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("sfc-reaper".into())
                    .spawn(move || s.reaper_loop())
                    .map_err(|e| sfc_core::SfcError::io("spawn reaper", e))?,
            );
        }
        *lock(&svc.threads) = threads;
        // Pre-register the core metric families: lazily-registered
        // counters only appear in the registry once first incremented, but
        // a scrape must expose the whole contract (at zero) from boot.
        for name in [
            "engine.units_completed",
            "engine.units_failed",
            "engine.units_retried",
            "engine.defects",
            "engine.units_repaired",
            "engine.units_downgraded",
            "filters.nan_events",
            "volrend.nan_samples",
            "deadline.shed",
            "deadline.downgrades",
            "deadline.breaker_trips",
            "deadline.overruns",
            "store.hits",
            "store.misses",
            "store.evictions",
            "store.retries",
            "store.repairs",
            "store.repair_writebacks_failed",
            "store.poisoned",
            "server.lane_panics",
            "server.expired",
            "server.retry_arrivals",
            "server.dedup.hits",
            "server.dedup.inserts",
            "server.dedup.evictions",
            "client.retries",
            "client.hedges",
            "client.hedge_wins",
            "client.failovers",
            "client.breaker_opens",
            "client.budget_exhausted",
            "client.deadline_exhausted",
        ] {
            let _ = metrics::counter(name);
        }
        {
            // Interval sampler: folds this instance's polled state into
            // the process-wide registry so an out-of-band scrape of the
            // global registry stays fresh between requests. Holds a Weak
            // reference — the sampler never keeps a drained service alive.
            let weak = Arc::downgrade(&svc);
            let source: metrics::SampleFn = Box::new(move |reg: &Registry| {
                if let Some(s) = weak.upgrade() {
                    s.fold_into(reg);
                }
            });
            *lock(&svc.sampler) = Some(Sampler::spawn(SAMPLE_INTERVAL, vec![source]));
        }
        Ok(svc)
    }

    /// This instance's polled state as `server.*` name → value pairs
    /// (the single source both the sampler and the snapshot overlay use).
    fn server_gauges(&self) -> [(&'static str, i64); 17] {
        let s = self.sched.stats();
        let c = self.cache.stats();
        [
            ("server.sched.submitted", s.submitted as i64),
            ("server.sched.served", s.served as i64),
            ("server.sched.coalesced", s.coalesced as i64),
            ("server.sched.overloaded", s.overloaded as i64),
            ("server.sched.shed", s.shed as i64),
            ("server.sched.abandoned", s.abandoned as i64),
            ("server.cache.hits", c.hits as i64),
            ("server.cache.misses", c.misses as i64),
            ("server.cache.evictions", c.evictions as i64),
            ("server.cache.spills", c.spills as i64),
            ("server.cache.spill_hits", c.spill_hits as i64),
            ("server.cache.spill_corrupt", c.spill_corrupt as i64),
            ("server.cache.resident_bytes", c.resident_bytes as i64),
            ("server.cache.resident", c.resident as i64),
            ("server.active", self.active_count() as i64),
            ("server.panics", self.panics.load(Ordering::Relaxed) as i64),
            ("server.dedup.resident", self.dedup.resident() as i64),
        ]
    }

    /// Write this instance's polled state into `reg` under `server.*`
    /// names (the sampler's source). Best-effort, last-writer-wins when
    /// several services share the process; exact per-instance values come
    /// from [`Service::metrics_snapshot`], which overlays the snapshot
    /// directly and never races another instance.
    fn fold_into(&self, reg: &Registry) {
        for (name, v) in self.server_gauges() {
            reg.gauge(name).set(v);
        }
    }

    /// One coherent snapshot of the whole metrics plane: the global
    /// registry (engine, deadline, store, memsim, filter/render counters)
    /// with this instance's `server.*` state overlaid. Both
    /// [`Service::stats_line`] and the Prometheus `metrics` verb render
    /// from this single snapshot, so they agree by construction.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = metrics::global().snapshot();
        for (name, v) in self.server_gauges() {
            snap.set_gauge(name, v);
        }
        snap
    }

    /// The full metrics plane in Prometheus text exposition format (the
    /// `metrics` verb's body).
    pub fn prometheus_text(&self) -> String {
        sfc_harness::encode_prometheus(&self.metrics_snapshot())
    }

    /// Admit a request (the net layer's entry point): consult the
    /// idempotency dedup cache first — a retried `req_id` whose
    /// execution already completed is answered from the cache with
    /// `dedup=1`, queueing nothing — then fall through to the scheduler.
    pub fn admit(&self, req: Request) -> Result<Admission, Overloaded> {
        if let Some(id) = &req.req_id {
            if let Some(resp) = self.dedup.get(&req.tenant, id) {
                return Ok(Admission::Cached(resp));
            }
        }
        if req.attempt > 1 {
            RETRY_ARRIVALS.add(1);
        }
        self.sched.submit(req).map(Admission::Ticket)
    }

    /// Queue a request directly, bypassing the dedup cache (tests and
    /// embedders that manage their own idempotency).
    pub fn submit(&self, req: Request) -> Result<Ticket, Overloaded> {
        self.sched.submit(req)
    }

    /// What journal recovery found at startup, if journaling is on.
    pub fn recovery(&self) -> Option<&JournalRecovery> {
        self.recovery.as_ref()
    }

    /// Idempotency dedup cache counters (process-wide) and residency.
    pub fn dedup_stats(&self) -> crate::dedup::DedupStats {
        self.dedup.stats()
    }

    /// Requests currently executing on a lane (tests and the `stats`
    /// verb watch this to observe cancellation and drain).
    pub fn active_requests(&self) -> usize {
        self.active_count()
    }

    /// One `key=value` stats line for the `stats` verb: a thin formatter
    /// over [`Service::metrics_snapshot`] (key set and semantics are
    /// pinned by regression test — see `tests/service.rs`).
    pub fn stats_line(&self) -> String {
        let m = self.metrics_snapshot();
        let g = |k: &str| m.gauge(k);
        format!(
            "stats submitted={} served={} coalesced={} overloaded={} shed={} abandoned={} \
             cache_hits={} cache_misses={} cache_evictions={} resident_bytes={} \
             active={} panics={} spills={} spill_hits={} spill_corrupt={}",
            g("server.sched.submitted"),
            g("server.sched.served"),
            g("server.sched.coalesced"),
            g("server.sched.overloaded"),
            g("server.sched.shed"),
            g("server.sched.abandoned"),
            g("server.cache.hits"),
            g("server.cache.misses"),
            g("server.cache.evictions"),
            g("server.cache.resident_bytes"),
            g("server.active"),
            g("server.panics"),
            g("server.cache.spills"),
            g("server.cache.spill_hits"),
            g("server.cache.spill_corrupt"),
        )
    }

    fn lane_loop(self: &Arc<Self>) {
        while let Some(job) = self.sched.next() {
            let id = self.register(&job);
            let resp = match catch_unwind(AssertUnwindSafe(|| self.execute(&job))) {
                Ok(Ok(resp)) => resp,
                Ok(Err(err)) => Response::header_only(RespHeader::Err {
                    kind: error_kind(&err).to_string(),
                    message: err.to_string(),
                }),
                Err(panic) => {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                    PANICS_TOTAL.add(1);
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".into());
                    Response::header_only(RespHeader::Err {
                        kind: "worker-panic".to_string(),
                        message: msg,
                    })
                }
            };
            // Remember completed results for retried `req_id`s *before*
            // delivery: once a client holds the reply it may retry after
            // a lost connection at any moment, and the cache must already
            // be able to answer.
            if let (Some(rid), RespHeader::Ok(h)) = (&job.req.req_id, &resp.header) {
                self.dedup.insert(&job.req.tenant, rid, *h, resp.body.clone());
            }
            job.deliver_all(&resp);
            self.deregister(id);
            self.sched.finish(&job);
        }
    }

    fn reaper_loop(&self) {
        while self.running.load(Ordering::Relaxed) {
            {
                let active = lock(&self.active);
                for (_, job) in active.iter() {
                    if !job.run.is_cancelled()
                        && !job.waiters.is_empty()
                        && job.waiters.iter().all(|t| t.is_cancelled())
                    {
                        job.run.cancel();
                    }
                }
            }
            std::thread::sleep(self.cfg.reaper_poll);
        }
    }

    fn register(&self, job: &Job) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        lock(&self.active).push((
            id,
            ActiveJob {
                run: job.token.clone(),
                waiters: job.waiters.iter().map(|w| w.token.clone()).collect(),
            },
        ));
        id
    }

    fn deregister(&self, id: u64) {
        lock(&self.active).retain(|(i, _)| *i != id);
    }

    fn active_count(&self) -> usize {
        lock(&self.active).len()
    }

    /// Run one job through the engine and build its reply.
    fn execute(&self, job: &Job) -> SfcResult<Response> {
        let req = &job.req;
        // Deadline propagation, server half: the budget clock started at
        // admission, so time spent queued is already gone. A request
        // whose budget expired while waiting is refused outright — no
        // compute — and what survives runs on the *remaining* budget.
        let waited = job.submitted.elapsed();
        if let Some(d) = req.deadline() {
            if waited >= d {
                EXPIRED_TOTAL.add(1);
                return Ok(Response::header_only(RespHeader::Expired {
                    deadline_ms: d.as_millis() as u64,
                    waited_ms: waited.as_millis() as u64,
                }));
            }
        }
        let key = VolumeKey {
            size: req.size,
            layout: req.layout,
            seed: req.seed,
        };
        let (vol, cache_hit) = self.cache.get(&key);
        let nunits = req.cost() as usize;
        let plan = match req.faults {
            Some((seed, rates)) => FaultPlan::random_rates(seed, nunits, &rates),
            None => FaultPlan::none(),
        };
        let budget = req
            .deadline()
            .map(|d| DeadlineBudget::with_budget(d.saturating_sub(waited)))
            .unwrap_or_else(DeadlineBudget::none);
        let supervisor = SupervisorConfig {
            nthreads: self.exec.nthreads(),
            schedule: Schedule::Dynamic,
            // Arm the watchdog only when this request can actually stall
            // (injected faults) or has a clock to keep (deadline).
            timeout: (req.faults.is_some() || req.deadline_ms.is_some())
                .then_some(self.cfg.unit_timeout),
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            watchdog_poll: Duration::from_millis(2),
            cancel: job.token.clone(),
        };

        let (body, dims, outcome) = match req.op {
            OpKind::Filter { radius } => {
                let run = filter_run(radius, self.exec.nthreads());
                let dims = vol.dims();
                let mut out =
                    Grid3::<f32, ArrayOrder3>::from_row_major(dims, &vec![0.0; dims.len()]);
                let range = req.faults.is_some().then_some((f32::NEG_INFINITY, f32::INFINITY));
                let policy = ExecPolicy::brownout(supervisor, budget, range);
                let outcome = dispatch_filter(&vol, &mut out, &run, &policy, &plan)?;
                (f32_bytes(&out.to_row_major()), dims, outcome)
            }
            OpKind::Render { image, tile } => {
                let (cam, tf, opts) = render_setup(req.size, image, tile, self.exec.nthreads());
                let range = req.faults.is_some().then_some((0.0, 1.0));
                let policy = ExecPolicy::brownout(supervisor, budget, range);
                let (img, outcome) = dispatch_render(&vol, &cam, &tf, &opts, &policy, &plan)?;
                (image_bytes(&img), Dims3::new(image, image, 4), outcome)
            }
        };

        if req.save {
            self.save_result(req, dims, &body)?;
        }
        self.journal_record(req, &outcome, job.waiters.len() - 1);

        let shed_units = outcome
            .quality
            .entries()
            .iter()
            .filter(|e| e.reason == DowngradeReason::Shed)
            .count();
        let header = OkHeader {
            bytes: body.len(),
            completed: outcome.report.completed,
            failed: outcome.report.failed.len(),
            retried: outcome.report.retried,
            downgraded: outcome.quality.len(),
            max_level: outcome.quality.max_level(),
            shed_units,
            whole: outcome.output_is_whole(),
            cache_hit,
            coalesced: job.waiters.len() - 1,
            dedup: false,
        };
        Ok(Response {
            header: RespHeader::Ok(header),
            body: Arc::from(body),
        })
    }

    fn save_result(&self, req: &Request, dims: Dims3, body: &[u8]) -> SfcResult<()> {
        let Some(dir) = &self.cfg.data_dir else {
            return Err(sfc_core::SfcError::InvalidParameter {
                name: "save",
                reason: "server started without a data directory".into(),
            });
        };
        // Idempotent naming: a retried request (same tenant + req_id)
        // overwrites its own file via `write_atomic`, so a duplicate
        // execution racing past the dedup cache still publishes exactly
        // one saved volume per logical request.
        let path = match &req.req_id {
            Some(rid) => dir.join(format!("{}-{}.vol", req.tenant, rid)),
            None => {
                let seq = self.save_seq.fetch_add(1, Ordering::Relaxed);
                dir.join(format!("{}-{:06}.vol", req.tenant, seq))
            }
        };
        let values = crate::protocol::bytes_f32(body)?;
        save_volume(&path, dims, &values)
    }

    fn journal_record(&self, req: &Request, outcome: &DegradedOutcome, coalesced: usize) {
        let Some(journal) = &self.journal else { return };
        let line = format!(
            "serve tenant={} op={} size={} seed={} completed={} failed={} downgraded={} whole={} coalesced={}",
            req.tenant,
            req.op.name(),
            req.size,
            req.seed,
            outcome.report.completed,
            outcome.report.failed.len(),
            outcome.quality.len(),
            u8::from(outcome.output_is_whole()),
            coalesced,
        );
        // Journal loss is not worth failing the request over: the reply
        // (and any saved volume) is the contract, the journal is the
        // audit trail.
        let _ = lock(journal).append(line.as_bytes());
    }

    /// Graceful drain: stop admitting, give queued and in-flight work
    /// `budget` to finish, then shed the queue and cancel the rest.
    /// Returns once every lane has exited; the service is unusable
    /// afterwards.
    pub fn drain(&self, budget: Duration) -> DrainReport {
        self.sched.begin_drain();
        let deadline = Instant::now() + budget;
        while Instant::now() < deadline {
            if self.sched.queued_total() == 0 && self.active_count() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let shed = self.sched.shed_all("drain budget exhausted");
        let mut cancelled = 0;
        {
            let active = lock(&self.active);
            for (_, job) in active.iter() {
                if !job.run.is_cancelled() {
                    job.run.cancel();
                    cancelled += 1;
                }
            }
        }
        // Cancelled runs finish fast (queued units are accounted as
        // Cancelled without running); wait for the lanes to deliver.
        while self.active_count() > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.sched.stop();
        self.running.store(false, Ordering::Relaxed);
        // Stop the sampler (its final tick folds the post-drain state).
        if let Some(sampler) = lock(&self.sampler).take() {
            sampler.stop();
        }
        let threads = std::mem::take(&mut *lock(&self.threads));
        for t in threads {
            let _ = t.join();
        }
        DrainReport {
            clean: shed == 0 && cancelled == 0,
            shed,
            cancelled,
        }
    }
}

/// The canonical filter configuration for a request: the mapping every
/// caller (service and conformance tests) must share for the
/// bitwise-identical-to-`Plain` invariant to be checkable.
pub fn filter_run(radius: usize, nthreads: usize) -> FilterRun {
    FilterRun {
        params: BilateralParams {
            radius,
            sigma_spatial: (radius as f32 / 2.0).max(0.5),
            sigma_range: 0.1,
            order: StencilOrder::Xyz,
        },
        pencil_axis: Axis::X,
        weight: Default::default(),
        nthreads,
    }
}

/// The canonical render configuration for a request: the standard orbit
/// camera looking down +x at the volume center, the `fire` transfer
/// function, and default integration parameters.
pub fn render_setup(
    size: usize,
    image: usize,
    tile: usize,
    nthreads: usize,
) -> (Camera, TransferFunction, RenderOpts) {
    let n = size as f32;
    let cam = Camera::look_at(
        vec3(n * 2.5, n / 2.0, n / 2.0),
        vec3(n / 2.0, n / 2.0, n / 2.0),
        vec3(0.0, 1.0, 0.0),
        Projection::Perspective {
            fov_y: 40f32.to_radians(),
        },
        image,
        image,
    );
    let tf = TransferFunction::fire();
    let opts = RenderOpts {
        tile,
        nthreads,
        ..Default::default()
    };
    (cam, tf, opts)
}

/// Flatten an RGBA image to interleaved little-endian `f32` bytes.
pub fn image_bytes(img: &Image) -> Vec<u8> {
    let mut values = Vec::with_capacity(img.pixels().len() * 4);
    for p in img.pixels() {
        values.extend_from_slice(&[p.r, p.g, p.b, p.a]);
    }
    f32_bytes(&values)
}

fn dispatch_filter(
    vol: &crate::cache::CachedVolume,
    out: &mut Grid3<f32, ArrayOrder3>,
    run: &FilterRun,
    policy: &ExecPolicy,
    plan: &FaultPlan,
) -> SfcResult<DegradedOutcome> {
    use crate::cache::CachedVolume as V;
    match vol {
        V::Array(g) => try_bilateral3d_with_policy(g, out, run, policy, plan),
        V::Z(g) => try_bilateral3d_with_policy(g, out, run, policy, plan),
        V::Tiled(g) => try_bilateral3d_with_policy(g, out, run, policy, plan),
        V::Hilbert(g) => try_bilateral3d_with_policy(g, out, run, policy, plan),
    }
}

fn dispatch_render(
    vol: &crate::cache::CachedVolume,
    cam: &Camera,
    tf: &TransferFunction,
    opts: &RenderOpts,
    policy: &ExecPolicy,
    plan: &FaultPlan,
) -> SfcResult<(Image, DegradedOutcome)> {
    use crate::cache::CachedVolume as V;
    match vol {
        V::Array(g) => render_with_policy(g, cam, tf, opts, policy, plan),
        V::Z(g) => render_with_policy(g, cam, tf, opts, policy, plan),
        V::Tiled(g) => render_with_policy(g, cam, tf, opts, policy, plan),
        V::Hilbert(g) => render_with_policy(g, cam, tf, opts, policy, plan),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{bytes_f32, Request};
    use crate::scheduler::Response;

    fn svc(cfg: ServiceConfig) -> Arc<Service> {
        Service::start(cfg).expect("service starts")
    }

    fn wait_ok(t: &Ticket) -> (OkHeader, Vec<u8>) {
        let Response { header, body } = t.wait(Duration::from_secs(30)).expect("reply in time");
        match header {
            RespHeader::Ok(h) => (h, body.to_vec()),
            other => panic!("expected ok, got {other:?}"),
        }
    }

    #[test]
    fn serves_a_filter_request_end_to_end() {
        let s = svc(ServiceConfig::default());
        let req = Request::parse("filter tenant=t size=8 seed=3 radius=1 layout=hilbert")
            .expect("valid");
        let t = s.submit(req).expect("admitted");
        let (h, body) = wait_ok(&t);
        assert_eq!(h.bytes, 8 * 8 * 8 * 4);
        assert_eq!(body.len(), h.bytes);
        assert!(h.whole);
        assert_eq!(h.failed, 0);
        assert!(bytes_f32(&body).expect("f32 body").iter().all(|v| v.is_finite()));
        s.drain(Duration::from_secs(5));
    }

    #[test]
    fn serves_a_render_request_end_to_end() {
        let s = svc(ServiceConfig::default());
        let req = Request::parse("render tenant=t size=8 seed=3 image=16 tile=8").expect("valid");
        let t = s.submit(req).expect("admitted");
        let (h, body) = wait_ok(&t);
        assert_eq!(h.bytes, 16 * 16 * 4 * 4);
        assert_eq!(body.len(), h.bytes);
        assert!(h.whole);
        s.drain(Duration::from_secs(5));
    }

    #[test]
    fn spill_mode_round_trips_cold_volumes_through_the_disk_tier() {
        let spill = std::env::temp_dir()
            .join(format!("sfc_service_spill_{}", std::process::id()));
        std::fs::remove_dir_all(&spill).ok();
        // Budget fits one 8³ volume: alternating seeds force evictions.
        let s = svc(ServiceConfig {
            cache_bytes: 8 * 8 * 8 * 4,
            spill_dir: Some(spill.clone()),
            ..ServiceConfig::default()
        });
        let ask = |seed: u64| {
            let t = s
                .submit(
                    Request::parse(&format!(
                        "filter tenant=t size=8 seed={seed} radius=1 layout=z"
                    ))
                    .expect("valid"),
                )
                .expect("admitted");
            wait_ok(&t).1
        };
        let first = ask(1);
        ask(2); // evicts seed 1 to the spill store
        let again = ask(1); // faulted back from disk
        assert_eq!(first, again, "spilled volume must produce identical bytes");
        let stats = s.cache.stats();
        assert!(stats.spills >= 1, "{stats:?}");
        assert!(stats.spill_hits >= 1, "{stats:?}");
        assert_eq!(stats.spill_corrupt, 0, "{stats:?}");
        s.drain(Duration::from_secs(5));
        std::fs::remove_dir_all(&spill).ok();
    }

    #[test]
    fn identical_requests_share_one_execution_and_the_cache() {
        let s = svc(ServiceConfig {
            lanes: 1, // force both requests to queue behind one lane
            ..ServiceConfig::default()
        });
        // Occupy the lane so the two coalescable requests sit queued.
        let blocker = s
            .submit(Request::parse("filter tenant=z size=10 seed=9 radius=2").expect("valid"))
            .expect("admitted");
        let ta = s
            .submit(Request::parse("filter tenant=a size=8 seed=5 radius=1").expect("valid"))
            .expect("admitted");
        let tb = s
            .submit(Request::parse("filter tenant=b size=8 seed=5 radius=1").expect("valid"))
            .expect("admitted");
        let _ = wait_ok(&blocker);
        let (ha, body_a) = wait_ok(&ta);
        let (hb, body_b) = wait_ok(&tb);
        assert_eq!(body_a, body_b, "coalesced waiters get the same bytes");
        // Both waiters see the same header: one other request shared
        // this execution.
        assert_eq!((ha.coalesced, hb.coalesced), (1, 1));
        s.drain(Duration::from_secs(5));
        assert_eq!(s.sched.stats().coalesced, 1);
    }

    #[test]
    fn disconnected_waiters_reap_the_run() {
        let s = svc(ServiceConfig {
            lanes: 1,
            ..ServiceConfig::default()
        });
        // A large-ish request with stalls so there is time to cancel it.
        let req = Request::parse(
            "filter tenant=t size=16 seed=1 radius=2 fault_seed=3 timeout_rate=0.5 stall_ms=50",
        )
        .expect("valid");
        let t = s.submit(req).expect("admitted");
        std::thread::sleep(Duration::from_millis(20));
        t.token.cancel();
        // The reaper fires the run token; the lane still delivers a
        // reply (to nobody) and frees itself well before the uncancelled
        // run would have finished.
        let start = Instant::now();
        while s.active_count() > 0 && start.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(s.active_count(), 0, "cancelled run drained");
        s.drain(Duration::from_secs(5));
    }

    #[test]
    fn drain_with_empty_queues_is_clean() {
        let s = svc(ServiceConfig::default());
        let t = s
            .submit(Request::parse("filter tenant=t size=8 seed=1 radius=1").expect("valid"))
            .expect("admitted");
        let _ = wait_ok(&t);
        let report = s.drain(Duration::from_secs(5));
        assert!(report.clean, "{report:?}");
        assert_eq!((report.shed, report.cancelled), (0, 0));
    }

    #[test]
    fn save_writes_a_loadable_volume_and_journals_the_request() {
        let dir = std::env::temp_dir().join(format!("sfc-svc-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = svc(ServiceConfig {
            data_dir: Some(dir.clone()),
            journal: Some(dir.join("journal.bin")),
            ..ServiceConfig::default()
        });
        let t = s
            .submit(Request::parse("filter tenant=t size=8 seed=1 radius=1 save=1").expect("valid"))
            .expect("admitted");
        let (h, body) = wait_ok(&t);
        assert!(h.whole);
        s.drain(Duration::from_secs(5));
        let saved: Vec<_> = std::fs::read_dir(&dir)
            .expect("data dir")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "vol"))
            .collect();
        assert_eq!(saved.len(), 1);
        let (dims, values) = sfc_datagen::load_volume(&saved[0]).expect("clean volume");
        assert_eq!(dims, Dims3::cube(8));
        assert_eq!(f32_bytes(&values), body, "saved bytes match the reply");
        // The journal replays cleanly and holds the serve record.
        let (_, rec) = Journal::open(dir.join("journal.bin")).expect("journal opens");
        assert_eq!(rec.records.len(), 1);
        assert!(!rec.was_torn());
        assert!(String::from_utf8_lossy(&rec.records[0]).starts_with("serve tenant=t"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
