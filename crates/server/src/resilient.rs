//! End-to-end request resilience over a replicated `sfc_serve` group:
//! idempotent retries, hedged failover, and deadline propagation.
//!
//! The plain [`Client`](crate::Client) is one socket to one server; this
//! layer wraps it into a [`ResilientClient`] over a [`ReplicaSet`] of N
//! endpoints and closes the three failure windows a single connection
//! leaves open:
//!
//! * **Lost replies** — every request is tagged with an auto-generated
//!   `req_id` idempotency key, so a retry after a transport error rides
//!   the server's dedup cache: the side effect (`save=1`) is applied
//!   exactly once, and the replayed reply arrives with `dedup=1`.
//! * **Dead or slow replicas** — per-endpoint [`CircuitBreaker`]s
//!   (closed → open → half-open) take a failing replica out of rotation
//!   and probe it back in; transient failures fail over to the next
//!   healthy endpoint; and *hedged reads* launch a second attempt on
//!   another replica once the first exceeds the observed p95 latency —
//!   first response wins, the loser is cancelled by disconnect (the
//!   server's reaper then abandons its work).
//! * **Retry storms** — attempts are bounded ([`RetryPolicy`]), paced by
//!   decorrelated-jitter backoff, and gated by a token-bucket
//!   [`RetryBudget`]: when the whole group is dying, successes stop
//!   refilling the bucket and the client collectively stops retrying.
//!
//! Deadline propagation: the caller's `deadline_ms` is a budget for the
//! *logical* request. Each attempt carries only the remaining budget
//! (never zero — a zero remainder is deadline exhaustion, reported
//! locally), backoff sleeps are clamped to it, and the per-attempt
//! socket timeout never outlives it, so one stuck replica cannot eat
//! the whole budget.
//!
//! On the fault-free path the resilient client is a pass-through: one
//! attempt, no hedge fired, and the reply bytes are bitwise identical to
//! the plain client's (pinned by `tests/resilience.rs`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use sfc_core::{SfcError, SfcResult};
use sfc_harness::{DecorrelatedJitter, LazyCounter, LazyHistogram, RetryBudget};

use crate::client::{CancelHandle, Client};
use crate::protocol::{error_kind_is_transient, RespHeader, Request};

static RETRIES: LazyCounter = LazyCounter::new("client.retries");
static HEDGES: LazyCounter = LazyCounter::new("client.hedges");
static HEDGE_WINS: LazyCounter = LazyCounter::new("client.hedge_wins");
static FAILOVERS: LazyCounter = LazyCounter::new("client.failovers");
static BREAKER_OPENS: LazyCounter = LazyCounter::new("client.breaker_opens");
static BUDGET_EXHAUSTED: LazyCounter = LazyCounter::new("client.budget_exhausted");
static DEADLINE_EXHAUSTED: LazyCounter = LazyCounter::new("client.deadline_exhausted");
static LATENCY_US: LazyHistogram = LazyHistogram::new("client.latency_us");

/// An attempt is only worth sending with at least this much budget left.
const MIN_REMAINING: Duration = Duration::from_millis(1);

/// How many recent response latencies feed the hedge-delay percentile.
const LATENCY_WINDOW: usize = 128;

/// The remaining deadline budget after `elapsed`, or `None` once the
/// request is exhausted. Saturating: a late clock read can never
/// underflow into a huge bogus budget, and a sub-[`MIN_REMAINING`]
/// remainder is exhaustion (the wire rejects `deadline_ms=0`, and a
/// 1 ms budget spent on serialization helps nobody).
pub fn remaining_deadline(total: Duration, elapsed: Duration) -> Option<Duration> {
    let rem = total.saturating_sub(elapsed);
    (rem >= MIN_REMAINING).then_some(rem)
}

/// Client-side resilience knobs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total delivery attempts per logical request (including the
    /// first); `1` disables retries entirely.
    pub max_attempts: u32,
    /// First backoff delay (decorrelated jitter grows from here).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Retry-budget bucket capacity in tokens (see [`RetryBudget`]).
    pub budget_cap: f64,
    /// Tokens refunded per success (fractional).
    pub budget_refill: f64,
    /// Enable hedged reads (a second attempt on another replica after
    /// the observed p95 latency). Saves are never hedged — they retry
    /// through the dedup cache instead.
    pub hedge: bool,
    /// Floor on the hedge delay (and the delay used before enough
    /// latency samples exist to estimate a p95).
    pub hedge_min: Duration,
    /// Per-attempt socket timeout when the request carries no deadline
    /// (with a deadline, the remaining budget bounds the attempt).
    pub request_timeout: Duration,
    /// Consecutive transport failures that open an endpoint's breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before half-opening one probe.
    pub breaker_open_for: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            budget_cap: 10.0,
            budget_refill: 0.1,
            hedge: true,
            hedge_min: Duration::from_millis(20),
            request_timeout: Duration::from_secs(30),
            breaker_threshold: 3,
            breaker_open_for: Duration::from_millis(250),
        }
    }
}

/// Where an endpoint's circuit breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are refused until the cool-off elapses.
    Open,
    /// Cooling off: exactly one probe request is allowed through.
    HalfOpen,
}

struct BreakerInner {
    state: BreakerState,
    fails: u32,
    opened: Option<Instant>,
    probe_out: bool,
}

/// Per-endpoint circuit breaker: `threshold` consecutive transport
/// failures open it; after `open_for` it half-opens and admits one
/// probe, whose outcome closes or re-opens it. Typed server errors
/// (`err`, `overloaded`, `shed`) are *successes* here — the endpoint
/// answered; only transport-level failures count against it.
pub struct CircuitBreaker {
    threshold: u32,
    open_for: Duration,
    inner: Mutex<BreakerInner>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures and half-opens `open_for` later.
    pub fn new(threshold: u32, open_for: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            open_for,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                fails: 0,
                opened: None,
                probe_out: false,
            }),
        }
    }

    /// Whether a request may be sent to this endpoint right now. In
    /// half-open, only the first caller gets `true` (the probe); the
    /// rest wait for its verdict.
    pub fn allow(&self) -> bool {
        let mut g = lock(&self.inner);
        match g.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if g.opened.is_some_and(|t| t.elapsed() >= self.open_for) {
                    g.state = BreakerState::HalfOpen;
                    g.probe_out = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if g.probe_out {
                    false
                } else {
                    g.probe_out = true;
                    true
                }
            }
        }
    }

    /// Record an endpoint success: close and reset.
    pub fn on_success(&self) {
        let mut g = lock(&self.inner);
        g.state = BreakerState::Closed;
        g.fails = 0;
        g.opened = None;
        g.probe_out = false;
    }

    /// Record a transport failure: count toward the threshold in
    /// closed, re-open immediately in half-open.
    pub fn on_failure(&self) {
        let mut g = lock(&self.inner);
        match g.state {
            BreakerState::Closed => {
                g.fails += 1;
                if g.fails >= self.threshold {
                    g.state = BreakerState::Open;
                    g.opened = Some(Instant::now());
                    BREAKER_OPENS.add(1);
                }
            }
            BreakerState::HalfOpen => {
                g.state = BreakerState::Open;
                g.opened = Some(Instant::now());
                g.probe_out = false;
                BREAKER_OPENS.add(1);
            }
            BreakerState::Open => {}
        }
    }

    /// Current state (observability; may half-open as a side effect of
    /// [`CircuitBreaker::allow`], never of this).
    pub fn state(&self) -> BreakerState {
        lock(&self.inner).state
    }
}

struct Endpoint {
    addr: String,
    breaker: CircuitBreaker,
}

/// A fixed group of `sfc_serve` endpoints with per-endpoint breakers.
/// Routing is deterministic: the first breaker-admitted endpoint in the
/// given order wins (failover prefers earlier replicas back as soon as
/// their breakers close).
pub struct ReplicaSet {
    endpoints: Vec<Endpoint>,
}

impl ReplicaSet {
    /// A replica set over `addrs` (order is the routing preference).
    pub fn new<S: Into<String>>(
        addrs: impl IntoIterator<Item = S>,
        threshold: u32,
        open_for: Duration,
    ) -> Self {
        ReplicaSet {
            endpoints: addrs
                .into_iter()
                .map(|a| Endpoint {
                    addr: a.into(),
                    breaker: CircuitBreaker::new(threshold, open_for),
                })
                .collect(),
        }
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// The address of endpoint `i`.
    pub fn addr(&self, i: usize) -> &str {
        &self.endpoints[i].addr
    }

    /// The breaker state of endpoint `i`.
    pub fn breaker_state(&self, i: usize) -> BreakerState {
        self.endpoints[i].breaker.state()
    }

    fn breaker(&self, i: usize) -> &CircuitBreaker {
        &self.endpoints[i].breaker
    }

    /// The first breaker-admitted endpoint, preferring ones other than
    /// `exclude` (the endpoint that just failed); falls back to
    /// `exclude` itself if it is the only one admitted.
    fn pick(&self, exclude: Option<usize>) -> Option<usize> {
        let admitted = |i: &usize| self.endpoints[*i].breaker.allow();
        (0..self.endpoints.len())
            .filter(|i| Some(*i) != exclude)
            .find(admitted)
            .or_else(|| exclude.filter(admitted))
    }

    /// A breaker-admitted endpoint other than `primary` (hedge target).
    fn pick_other(&self, primary: usize) -> Option<usize> {
        (0..self.endpoints.len())
            .find(|i| *i != primary && self.endpoints[*i].breaker.allow())
    }

    /// Active health check: `ping` every endpoint (with `timeout` on
    /// connect I/O) and feed the outcome to its breaker. Returns each
    /// endpoint's health. Unlike request traffic this bypasses
    /// [`CircuitBreaker::allow`] — an open breaker heals as soon as its
    /// endpoint answers a ping.
    pub fn ping_all(&self, timeout: Duration) -> Vec<bool> {
        self.endpoints
            .iter()
            .map(|ep| {
                let up = Client::connect(&ep.addr)
                    .and_then(|mut c| {
                        c.set_timeout(timeout)?;
                        c.send_line("ping")
                    })
                    .map(|r| r == "pong")
                    .unwrap_or(false);
                if up {
                    ep.breaker.on_success();
                } else {
                    ep.breaker.on_failure();
                }
                up
            })
            .collect()
    }
}

/// What one resolved logical request cost (see
/// [`ResilientClient::request_detailed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendOutcome {
    /// Delivery attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Endpoint index that produced the reply.
    pub endpoint: usize,
    /// Whether a hedge attempt was launched.
    pub hedged: bool,
    /// Whether the hedge attempt won the race.
    pub hedge_won: bool,
}

/// A retrying, hedging, deadline-aware client over a [`ReplicaSet`].
pub struct ResilientClient {
    replicas: ReplicaSet,
    policy: RetryPolicy,
    budget: RetryBudget,
    jitter: Mutex<DecorrelatedJitter>,
    latencies: Mutex<VecDeque<Duration>>,
    /// Auto-`req_id` namespace: distinct per client (seed) and call.
    id_ns: u64,
    next_id: AtomicU64,
}

impl ResilientClient {
    /// A client over `addrs` (first = preferred). `seed` makes the
    /// backoff schedule and generated `req_id`s deterministic.
    pub fn new<S: Into<String>>(
        addrs: impl IntoIterator<Item = S>,
        policy: RetryPolicy,
        seed: u64,
    ) -> Self {
        let replicas = ReplicaSet::new(addrs, policy.breaker_threshold, policy.breaker_open_for);
        ResilientClient {
            replicas,
            budget: RetryBudget::new(policy.budget_cap, policy.budget_refill),
            jitter: Mutex::new(DecorrelatedJitter::new(
                seed,
                policy.backoff_base,
                policy.backoff_cap,
            )),
            latencies: Mutex::new(VecDeque::with_capacity(LATENCY_WINDOW)),
            id_ns: seed,
            next_id: AtomicU64::new(0),
            policy,
        }
    }

    /// The underlying replica set (breaker states, health checks).
    pub fn replicas(&self) -> &ReplicaSet {
        &self.replicas
    }

    /// Whole retry tokens currently available.
    pub fn retry_tokens(&self) -> u64 {
        self.budget.available()
    }

    /// Submit a logical request, riding retries/failover/hedging as
    /// needed. Mirrors [`Client::request`]: any reply the group
    /// produces — `ok`, typed `err`, `overloaded`, `shed`, `expired` —
    /// comes back as `Ok((header, body))`; `Err` means the transport
    /// failed on every allowed attempt.
    pub fn request(&self, req: &Request) -> SfcResult<(RespHeader, Vec<u8>)> {
        self.request_detailed(req).map(|(h, b, _)| (h, b))
    }

    /// [`ResilientClient::request`] plus per-request accounting.
    pub fn request_detailed(
        &self,
        req: &Request,
    ) -> SfcResult<(RespHeader, Vec<u8>, SendOutcome)> {
        let mut req = req.clone();
        if req.req_id.is_none() {
            // Idempotency key: unique per logical request, shared by all
            // its attempts — what makes a retried save exactly-once.
            let n = self.next_id.fetch_add(1, Ordering::Relaxed);
            req.req_id = Some(format!("c{:016x}-{n}", self.id_ns));
        }
        let total = req.deadline_ms.map(Duration::from_millis);
        let started = Instant::now();
        let mut last_err: Option<SfcError> = None;
        let mut failed_at: Option<usize> = None;

        for attempt in 1..=self.policy.max_attempts {
            // Deadline propagation: each attempt carries only what is
            // left of the logical budget.
            let remaining = match total {
                Some(t) => match remaining_deadline(t, started.elapsed()) {
                    Some(rem) => {
                        req.deadline_ms = Some(rem.as_millis().max(1) as u64);
                        Some(rem)
                    }
                    None => {
                        DEADLINE_EXHAUSTED.add(1);
                        return Err(deadline_exhausted(attempt, t));
                    }
                },
                None => None,
            };
            let per_attempt = remaining
                .map(|r| r.min(self.policy.request_timeout))
                .unwrap_or(self.policy.request_timeout);
            req.attempt = attempt;

            let Some(idx) = self.replicas.pick(failed_at) else {
                return Err(last_err.unwrap_or_else(all_replicas_open));
            };
            if attempt > 1 && Some(idx) != failed_at {
                FAILOVERS.add(1);
            }

            let attempt_start = Instant::now();
            match self.race(idx, &req, per_attempt) {
                Raced::Reply {
                    endpoint,
                    header,
                    body,
                    hedged,
                } => {
                    let elapsed = attempt_start.elapsed();
                    self.observe_latency(elapsed);
                    self.budget.on_success();
                    lock(&self.jitter).reset();
                    if matches!(header, RespHeader::Expired { .. }) {
                        DEADLINE_EXHAUSTED.add(1);
                    }
                    // Transient typed errors may retry (the replica is
                    // healthy, the *request* hit a transient failure —
                    // e.g. a worker panic another replica won't repeat).
                    if let RespHeader::Err { kind, .. } = &header {
                        if error_kind_is_transient(kind)
                            && attempt < self.policy.max_attempts
                            && self.spend_or_count()
                        {
                            failed_at = Some(endpoint);
                            last_err = None;
                            RETRIES.add(1);
                            self.backoff(remaining, total, started);
                            continue;
                        }
                    }
                    let outcome = SendOutcome {
                        attempts: attempt,
                        endpoint,
                        hedged,
                        hedge_won: hedged && endpoint != idx,
                    };
                    return Ok((header, body, outcome));
                }
                Raced::TransportFailed { err, endpoint } => {
                    failed_at = Some(endpoint);
                    last_err = Some(err);
                    if attempt < self.policy.max_attempts && self.spend_or_count() {
                        RETRIES.add(1);
                        self.backoff(remaining, total, started);
                        continue;
                    }
                    break;
                }
            }
        }
        Err(last_err.unwrap_or_else(all_replicas_open))
    }

    /// Spend a retry token, counting the refusal if the bucket is dry.
    fn spend_or_count(&self) -> bool {
        let ok = self.budget.try_spend();
        if !ok {
            BUDGET_EXHAUSTED.add(1);
        }
        ok
    }

    /// Sleep the next backoff delay, clamped to the remaining budget.
    fn backoff(&self, remaining: Option<Duration>, total: Option<Duration>, started: Instant) {
        let mut delay = lock(&self.jitter).next_delay();
        if let (Some(_), Some(t)) = (remaining, total) {
            let left = t.saturating_sub(started.elapsed());
            delay = delay.min(left);
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    fn observe_latency(&self, d: Duration) {
        LATENCY_US.record_duration_us(d);
        let mut g = lock(&self.latencies);
        if g.len() >= LATENCY_WINDOW {
            g.pop_front();
        }
        g.push_back(d);
    }

    /// The hedge trigger: the p95 of recent response latencies, floored
    /// at `hedge_min` (which also covers the cold start, before enough
    /// samples exist to estimate anything).
    fn hedge_delay(&self) -> Duration {
        let g = lock(&self.latencies);
        if g.len() < 8 {
            return self.policy.hedge_min;
        }
        let mut v: Vec<Duration> = g.iter().copied().collect();
        drop(g);
        v.sort_unstable();
        let idx = (v.len() * 95 / 100).min(v.len() - 1);
        v[idx].max(self.policy.hedge_min)
    }

    /// One delivery attempt with optional hedging: send to `primary`;
    /// if no reply lands within the hedge delay, race a second attempt
    /// on another replica. First *reply* wins (a transport failure on
    /// one leg waits for the other); the loser's connection is shut
    /// down, which the server's disconnect detection turns into a
    /// cancelled run.
    fn race(&self, primary: usize, req: &Request, per_attempt: Duration) -> Raced {
        let (tx, rx) = mpsc::channel();
        let mut cancels: Vec<(usize, CancelHandle)> = Vec::new();
        let mut spawned = 0usize;

        match spawn_attempt(self.replicas.addr(primary), primary, req, per_attempt, &tx) {
            Ok(handle) => {
                cancels.push((primary, handle));
                spawned += 1;
            }
            Err(err) => {
                self.replicas.breaker(primary).on_failure();
                return Raced::TransportFailed {
                    err,
                    endpoint: primary,
                };
            }
        }

        let hedgeable = self.policy.hedge && !req.save && self.replicas.len() > 1;
        let mut hedged = false;
        let mut replies: Vec<AttemptResult> = Vec::new();
        if hedgeable {
            match rx.recv_timeout(self.hedge_delay()) {
                Ok(msg) => replies.push(msg),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if let Some(alt) = self.replicas.pick_other(primary) {
                        if let Ok(handle) =
                            spawn_attempt(self.replicas.addr(alt), alt, req, per_attempt, &tx)
                        {
                            cancels.push((alt, handle));
                            spawned += 1;
                            hedged = true;
                            HEDGES.add(1);
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {}
            }
        }
        drop(tx);

        let mut last: Option<(usize, SfcError)> = None;
        let mut reported = 0usize;
        loop {
            // First actual reply wins the race, whatever it says; a leg
            // that died at the transport level waits for the other.
            while let Some((endpoint, res)) = replies.pop() {
                reported += 1;
                match res {
                    Ok((header, body)) => {
                        self.replicas.breaker(endpoint).on_success();
                        for (i, handle) in &cancels {
                            if *i != endpoint {
                                handle.cancel();
                            }
                        }
                        if hedged && endpoint != primary {
                            HEDGE_WINS.add(1);
                        }
                        return Raced::Reply {
                            endpoint,
                            header,
                            body,
                            hedged,
                        };
                    }
                    Err(err) => {
                        self.replicas.breaker(endpoint).on_failure();
                        last = Some((endpoint, err));
                    }
                }
            }
            if reported >= spawned {
                break;
            }
            match rx.recv() {
                Ok(msg) => replies.push(msg),
                Err(_) => break, // every sender dropped: all legs reported
            }
        }
        let (endpoint, err) = last.unwrap_or_else(|| (primary, all_replicas_open()));
        Raced::TransportFailed { err, endpoint }
    }
}

enum Raced {
    Reply {
        endpoint: usize,
        header: RespHeader,
        body: Vec<u8>,
        hedged: bool,
    },
    TransportFailed {
        err: SfcError,
        endpoint: usize,
    },
}

type AttemptResult = (usize, SfcResult<(RespHeader, Vec<u8>)>);

/// Connect to `addr` and run `req` on a detached thread, reporting the
/// result through `tx`. Connect errors surface synchronously (no thread
/// is spawned); the returned handle can cancel the in-flight attempt.
fn spawn_attempt(
    addr: &str,
    endpoint: usize,
    req: &Request,
    timeout: Duration,
    tx: &mpsc::Sender<AttemptResult>,
) -> SfcResult<CancelHandle> {
    let mut client = Client::connect(addr)?;
    client.set_timeout(timeout)?;
    let handle = client.cancel_handle()?;
    let req = req.clone();
    let tx = tx.clone();
    let spawned = std::thread::Builder::new()
        .name("sfc-attempt".into())
        .spawn(move || {
            let _ = tx.send((endpoint, client.request(&req)));
        });
    if let Err(e) = spawned {
        return Err(SfcError::io("spawn attempt", e));
    }
    Ok(handle)
}

fn deadline_exhausted(attempt: u32, total: Duration) -> SfcError {
    SfcError::Timeout {
        item: attempt as usize,
        limit: total,
    }
}

fn all_replicas_open() -> SfcError {
    SfcError::io(
        "replica set",
        std::io::Error::new(
            std::io::ErrorKind::NotConnected,
            "every endpoint's circuit breaker is open",
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_deadline_decrements_and_never_underflows() {
        let total = Duration::from_millis(100);
        assert_eq!(
            remaining_deadline(total, Duration::from_millis(40)),
            Some(Duration::from_millis(60))
        );
        // Elapsed past the budget saturates to exhaustion, not underflow.
        assert_eq!(remaining_deadline(total, Duration::from_millis(100)), None);
        assert_eq!(remaining_deadline(total, Duration::from_secs(10_000)), None);
        // A sub-millisecond remainder is exhaustion too: the wire
        // rejects deadline_ms=0, so the client must never produce it.
        assert_eq!(
            remaining_deadline(total, total - Duration::from_micros(500)),
            None
        );
        assert_eq!(
            remaining_deadline(total, total - MIN_REMAINING),
            Some(MIN_REMAINING)
        );
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_one_probe() {
        let b = CircuitBreaker::new(3, Duration::from_millis(30));
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        b.on_failure();
        assert!(b.allow(), "below threshold stays closed");
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "open refuses immediately");
        std::thread::sleep(Duration::from_millis(60));
        assert!(b.allow(), "cool-off elapsed: one probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "second caller waits for the probe verdict");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = CircuitBreaker::new(1, Duration::from_millis(20));
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.allow());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open, "failed probe re-opens");
        assert!(!b.allow());
    }

    #[test]
    fn success_resets_the_consecutive_failure_count() {
        let b = CircuitBreaker::new(3, Duration::from_secs(60));
        b.on_failure();
        b.on_failure();
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "non-consecutive failures never open"
        );
    }

    #[test]
    fn replica_pick_prefers_healthy_endpoints_and_skips_the_failed_one() {
        let rs = ReplicaSet::new(["a:1", "b:2", "c:3"], 1, Duration::from_secs(60));
        assert_eq!(rs.pick(None), Some(0));
        // After endpoint 0 fails an attempt, prefer another endpoint.
        assert_eq!(rs.pick(Some(0)), Some(1));
        // Open breakers drop out of rotation entirely.
        rs.breaker(1).on_failure();
        assert_eq!(rs.pick(Some(0)), Some(2));
        rs.breaker(2).on_failure();
        // Only the just-failed endpoint remains admitted: fall back.
        assert_eq!(rs.pick(Some(0)), Some(0));
        rs.breaker(0).on_failure();
        assert_eq!(rs.pick(Some(0)), None, "all breakers open");
    }

    #[test]
    fn hedge_delay_floors_at_hedge_min_and_tracks_p95() {
        let c = ResilientClient::new(
            ["a:1", "b:2"],
            RetryPolicy {
                hedge_min: Duration::from_millis(15),
                ..RetryPolicy::default()
            },
            7,
        );
        assert_eq!(
            c.hedge_delay(),
            Duration::from_millis(15),
            "cold start uses the floor"
        );
        for i in 0..100u64 {
            c.observe_latency(Duration::from_millis(30 + i % 5));
        }
        let d = c.hedge_delay();
        assert!(d >= Duration::from_millis(30), "{d:?} tracks observed p95");
        assert!(d <= Duration::from_millis(35), "{d:?} within the window");
    }

    #[test]
    fn generated_req_ids_are_unique_and_wire_legal() {
        let c = ResilientClient::new(["a:1"], RetryPolicy::default(), 3);
        let mut req =
            Request::parse("filter tenant=t size=8 seed=1 radius=1").expect("valid");
        assert!(req.req_id.is_none());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let n = c.next_id.fetch_add(1, Ordering::Relaxed);
            let id = format!("c{:016x}-{n}", c.id_ns);
            assert!(id.len() <= 64);
            assert!(id
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_'));
            assert!(seen.insert(id.clone()));
            req.req_id = Some(id);
            // Round-trips through the wire grammar.
            let back = Request::parse(&req.format()).expect("formats legally");
            assert_eq!(back.req_id, req.req_id);
        }
    }
}
