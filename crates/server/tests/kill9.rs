//! Crash-consistency: `kill -9` mid-request must leave no partial
//! durable artifact.
//!
//! The test starts the real `sfc_serve` binary with a data directory and
//! a journal, drives a concurrent `save=1` write storm over TCP, then
//! SIGKILLs the process while writes are in flight. The contract
//! (DESIGN.md §9, "Durability"): every completed `.vol` file in the data
//! directory loads cleanly (checksummed, never torn — `write_atomic`
//! publishes via rename), and the journal replays — a torn final record
//! is truncated by recovery, never an error. Leftover `.NAME.tmp`
//! siblings are the *expected* crash residue and are ignored; the CI
//! smoke job separately asserts a clean shutdown leaves none.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sfc_datagen::load_volume;
use sfc_harness::Journal;

fn spawn_server(data_dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sfc_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--lanes",
            "4",
            "--data-dir",
            data_dir.to_str().expect("utf8 path"),
            "--journal",
            data_dir.join("journal.bin").to_str().expect("utf8 path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sfc_serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server prints a banner")
        .expect("readable banner");
    let addr = banner
        .strip_prefix("listening addr=")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn kill_nine_during_a_save_storm_leaves_no_partial_volume() {
    let dir = std::env::temp_dir().join(format!("sfc-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    let (mut child, addr) = spawn_server(&dir);

    // Storm: four writers submit small save requests back to back. Each
    // connection fires requests without reading replies so the server
    // stays saturated with in-flight writes.
    let mut writers = Vec::new();
    for w in 0..4u64 {
        let addr = addr.clone();
        writers.push(std::thread::spawn(move || {
            let Ok(mut stream) = TcpStream::connect(&addr) else { return };
            let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
            for r in 0..50u64 {
                let line = format!(
                    "filter tenant=w{w} size=8 seed={} radius=1 save=1\n",
                    w * 1000 + r
                );
                if stream.write_all(line.as_bytes()).is_err() {
                    return;
                }
            }
            // Keep the connection open so nothing gets cancelled: drain
            // replies until the SIGKILL severs the socket.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
            let mut buf = [0u8; 4096];
            loop {
                use std::io::Read;
                match stream.read(&mut buf) {
                    Ok(0) => return, // server gone
                    Ok(_) => {}      // replies streaming back
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => return, // reset by the kill
                }
            }
        }));
    }

    // Wait until at least a few volumes have been published, so the kill
    // interrupts a storm in progress rather than an idle server.
    let start = Instant::now();
    loop {
        let vols = count_vols(&dir);
        if vols >= 5 {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "server produced only {vols} volumes in 60s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    child.kill().expect("SIGKILL");
    let _ = child.wait();
    for w in writers {
        let _ = w.join();
    }

    // Every published volume must load cleanly: correct magic, dims,
    // checksum. A single torn byte would be a contract violation.
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("read data dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.ends_with(".vol") {
            let (dims, values) = load_volume(&path)
                .unwrap_or_else(|e| panic!("{name}: published volume is torn: {e}"));
            assert_eq!(dims.len(), values.len(), "{name}: dims/payload agree");
            checked += 1;
        }
    }
    assert!(checked >= 5, "expected at least 5 published volumes, found {checked}");

    // The journal replays: recovery may truncate a torn tail, but open
    // must succeed and every recovered record must be a complete line.
    let (_, rec) = Journal::open(dir.join("journal.bin")).expect("journal replays after kill -9");
    for record in &rec.records {
        let line = String::from_utf8_lossy(record);
        assert!(
            line.starts_with("serve tenant=w"),
            "recovered record is garbled: {line:?}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

fn count_vols(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter(|e| {
                    e.path()
                        .file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.ends_with(".vol"))
                })
                .count()
        })
        .unwrap_or(0)
}
