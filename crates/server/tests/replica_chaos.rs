//! Replica-group chaos: SIGKILL one of three real `sfc_serve` processes
//! mid-storm and prove the group as a whole never loses an acked save.
//!
//! The contract under test (ISSUE 10 chaos pin):
//!
//! * every request completes with a typed reply — the kill surfaces to
//!   callers only as retries/failovers inside [`ResilientClient`], never
//!   as a transport error;
//! * **zero lost acked saves** — for every `save=1` request that got an
//!   `ok`, the file `{tenant}-{req_id}.vol` exists in some replica's
//!   data directory and loads cleanly (checksummed, never torn);
//! * a surviving replica still serves a valid metrics scrape.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use sfc_datagen::load_volume;
use sfc_server::{Client, Request, ResilientClient, RespHeader, RetryPolicy};

fn count_vols(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "vol"))
                .count()
        })
        .unwrap_or(0)
}

fn spawn_replica(data_dir: &Path) -> (Child, String) {
    std::fs::create_dir_all(data_dir).expect("mkdir replica dir");
    let mut child = Command::new(env!("CARGO_BIN_EXE_sfc_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--lanes",
            "4",
            "--data-dir",
            data_dir.to_str().expect("utf8 path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sfc_serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let banner = BufReader::new(stdout)
        .lines()
        .next()
        .expect("server prints a banner")
        .expect("readable banner");
    let addr = banner
        .strip_prefix("listening addr=")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn killing_one_replica_mid_storm_loses_no_acked_save() {
    let base = std::env::temp_dir().join(format!("sfc-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dirs: Vec<PathBuf> = (0..3).map(|r| base.join(format!("replica{r}"))).collect();
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for dir in &dirs {
        let (child, addr) = spawn_replica(dir);
        children.push(child);
        addrs.push(addr);
    }

    // Storm: four tenants, each with its own resilient client over all
    // three replicas, every request a save with an explicit idempotency
    // key so acked files are auditable by name.
    const TENANTS: usize = 4;
    const REQUESTS: usize = 24;
    let addrs = Arc::new(addrs);
    let mut workers = Vec::new();
    for t in 0..TENANTS {
        let addrs = Arc::clone(&addrs);
        workers.push(std::thread::spawn(move || {
            let client = ResilientClient::new(
                addrs.iter().cloned(),
                RetryPolicy {
                    max_attempts: 8,
                    request_timeout: Duration::from_secs(30),
                    ..RetryPolicy::default()
                },
                0xC0FFEE ^ (t as u64),
            );
            let mut acked = Vec::new();
            for r in 0..REQUESTS {
                let line = format!(
                    "filter tenant=t{t} size=8 seed={} radius=1 save=1 req_id=storm-{r}",
                    (t * 1000 + r) as u64,
                );
                let req = Request::parse(&line).expect("valid storm line");
                let (header, _, _) = client
                    .request_detailed(&req)
                    .unwrap_or_else(|e| panic!("tenant {t} request {r}: transport error {e}"));
                if matches!(header, RespHeader::Ok(_)) {
                    acked.push(format!("t{t}-storm-{r}.vol"));
                }
            }
            acked
        }));
    }

    // SIGKILL replica 0 once it has visibly joined the storm (the
    // resilient client prefers the first healthy endpoint, so its data
    // dir fills first). The time guard keeps a fast machine from
    // leaving the kill until after the storm — worst case the kill
    // lands post-storm and the test degrades to a save audit.
    let started = std::time::Instant::now();
    while count_vols(&dirs[0]) < 8 && started.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(5));
    }
    children[0].kill().expect("SIGKILL replica 0");
    let _ = children[0].wait();

    let mut acked = Vec::new();
    for w in workers {
        acked.extend(w.join().expect("tenant thread completes"));
    }
    assert!(
        acked.len() >= TENANTS * REQUESTS / 2,
        "storm acked too few saves to be meaningful: {}",
        acked.len()
    );

    // Zero lost acked saves: every acked file exists in some replica's
    // data dir — including the killed one's — and loads cleanly.
    for name in &acked {
        let found = dirs.iter().map(|d| d.join(name)).find(|p| p.exists());
        let path = found.unwrap_or_else(|| panic!("acked save {name} not found in any replica dir"));
        let (dims, values) =
            load_volume(&path).unwrap_or_else(|e| panic!("{name}: acked save is torn: {e}"));
        assert_eq!(dims.len(), values.len(), "{name}: dims/payload agree");
    }

    // A survivor still serves a valid scrape.
    let mut survivor = Client::connect(&addrs[1]).expect("survivor connect");
    let text = survivor.scrape_metrics().expect("survivor scrape");
    assert!(
        text.lines().any(|l| l.starts_with("sfc_server_dedup_hits_total")),
        "survivor scrape is missing dedup family"
    );

    // Clean shutdown for the survivors.
    for child in &mut children[1..] {
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&base);
}
