//! Client-side error hygiene against a hostile or dying server.
//!
//! The client must convert every malformed reply into a typed
//! [`SfcError`] — never a panic, never an unbounded allocation, never a
//! hang. Each test stands up a scripted fake server that replies with
//! exactly the bytes under test and closes.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;

use sfc_server::{error_kind, Client, MAX_BODY};

/// A fake server that accepts one connection, reads the request line,
/// writes `reply` verbatim, and closes the socket.
fn scripted_server(reply: Vec<u8>) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("fake bind");
    let addr = listener.local_addr().expect("fake addr").to_string();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut line = String::new();
        let _ = BufReader::new(stream.try_clone().expect("clone")).read_line(&mut line);
        let mut stream = stream;
        let _ = stream.write_all(&reply);
        let _ = stream.flush();
        // Dropping the stream closes the connection mid-conversation.
    });
    (addr, handle)
}

#[test]
fn oversized_len_header_is_refused_before_allocation() {
    // A header claiming more than MAX_BODY must be rejected typed —
    // without the client ever allocating the claimed buffer.
    let claim = MAX_BODY + 1;
    let reply = format!(
        "ok bytes={claim} completed=0 failed=0 retried=0 downgraded=0 max_level=0 \
         shed_units=0 whole=1 cache=miss coalesced=0 dedup=0\n"
    );
    let (addr, handle) = scripted_server(reply.into_bytes());
    let mut client = Client::connect(&addr).expect("connect");
    let err = client
        .request_line("filter tenant=t size=8 seed=1 radius=1")
        .expect_err("oversized len must be refused");
    assert_eq!(error_kind(&err), "corrupt", "got {err:?}");
    assert!(
        err.to_string().contains("protocol max"),
        "error names the bound: {err}"
    );
    handle.join().expect("fake server exits");
}

#[test]
fn short_body_read_is_a_typed_corrupt_error() {
    // Header promises 64 bytes, the server dies after 10: the client
    // must surface a typed short-read error recording the progress.
    let mut reply = b"ok bytes=64 completed=1 failed=0 retried=0 downgraded=0 max_level=0 \
                      shed_units=0 whole=1 cache=miss coalesced=0 dedup=0\n"
        .to_vec();
    reply.extend_from_slice(&[0u8; 10]);
    let (addr, handle) = scripted_server(reply);
    let mut client = Client::connect(&addr).expect("connect");
    let err = client
        .request_line("filter tenant=t size=8 seed=1 radius=1")
        .expect_err("short body must fail");
    assert_eq!(error_kind(&err), "corrupt", "got {err:?}");
    assert!(
        err.to_string().contains("10 of 64"),
        "error records the progress: {err}"
    );
    handle.join().expect("fake server exits");
}

#[test]
fn unparsable_header_line_is_a_typed_error_not_a_panic() {
    let (addr, handle) = scripted_server(b"welcome to the wrong protocol\n".to_vec());
    let mut client = Client::connect(&addr).expect("connect");
    let err = client
        .request_line("filter tenant=t size=8 seed=1 radius=1")
        .expect_err("garbage header must fail");
    // Any typed kind is acceptable; the pin is "typed, not panic/hang".
    assert!(!error_kind(&err).is_empty(), "got {err:?}");
    handle.join().expect("fake server exits");
}

#[test]
fn server_closing_before_any_header_is_a_typed_io_error() {
    let (addr, handle) = scripted_server(Vec::new());
    let mut client = Client::connect(&addr).expect("connect");
    let err = client
        .request_line("filter tenant=t size=8 seed=1 radius=1")
        .expect_err("eof before header must fail");
    assert_eq!(error_kind(&err), "io", "got {err:?}");
    handle.join().expect("fake server exits");
}
