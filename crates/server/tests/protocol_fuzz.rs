//! Fuzz-style parse sweep over the wire grammar: hostile bytes must
//! produce typed errors, never panics.
//!
//! Strategy (deterministic, exhaustive rather than random): take a
//! corpus of valid request lines and response headers covering every
//! field the grammar knows, then parse (a) every truncation of every
//! line and (b) every single-byte mutation of every line — each byte
//! position replaced with a spread of hostile bytes (NUL, controls,
//! separators, high bytes, digits, letters). Every parse must return
//! `Ok` or a typed `Err`; a panic anywhere fails the sweep. This is the
//! same discipline the store applies to `.sfcv` headers (PR 8), applied
//! to the request plane.

use std::panic::{catch_unwind, AssertUnwindSafe};

use sfc_server::{Request, RespHeader};

/// Valid request lines exercising every key the grammar accepts.
const REQUEST_CORPUS: &[&str] = &[
    "filter tenant=t size=8 seed=3 radius=1",
    "filter tenant=alice-7 size=16 seed=9 radius=2 layout=hilbert save=1",
    "render tenant=bob_2 size=12 seed=1 image=32 tile=16 layout=z",
    "filter tenant=t size=8 seed=3 radius=1 deadline_ms=250 req_id=r-1 attempt=2",
    "render tenant=t size=8 seed=5 image=16 deadline_ms=1000 req_id=abc_DEF-123 attempt=1",
    "filter tenant=t size=10 seed=2 radius=1 fault_seed=7 panic_rate=0.1 flaky_rate=0.05 \
     timeout_rate=0.2 corrupt_rate=0.01 stall_ms=50",
];

/// Valid response header lines for the reply-side parser.
const HEADER_CORPUS: &[&str] = &[
    "ok bytes=2048 completed=64 failed=0 retried=0 downgraded=0 max_level=0 shed_units=0 \
     whole=1 cache=miss coalesced=0 dedup=0",
    "ok bytes=16 completed=3 failed=1 retried=2 downgraded=1 max_level=2 shed_units=1 \
     whole=0 cache=hit coalesced=3 dedup=1",
    "err worker-panic: lane caught a panic",
    "overloaded tenant=t reason=queue-full queued=8 limit=8",
    "shed: drain budget exhausted",
    "expired deadline_ms=250 waited_ms=312",
];

/// The byte spread substituted at every position: category boundaries
/// rather than all 256 values (NUL/controls break tokenization, `=` and
/// space break key=value splitting, high bytes break UTF-8, digits and
/// letters corrupt numbers and keywords).
const MUTATIONS: &[u8] = &[
    0x00, 0x01, 0x09, 0x0a, 0x0d, b' ', b'=', b'-', b'.', b'/', b'0', b'9', b'A', b'z', b'~',
    0x7f, 0x80, 0xc0, 0xff,
];

fn parses_without_panic(kind: &str, line: &str) {
    let owned = line.to_string();
    let result = match kind {
        "request" => catch_unwind(AssertUnwindSafe(|| {
            let _ = Request::parse(&owned);
        })),
        _ => catch_unwind(AssertUnwindSafe(|| {
            let _ = RespHeader::parse(&owned);
        })),
    };
    assert!(result.is_ok(), "{kind} parser panicked on {line:?}");
}

fn sweep(kind: &str, corpus: &[&str]) -> (usize, usize) {
    let mut truncations = 0;
    let mut mutations = 0;
    for line in corpus {
        // Sanity: the corpus itself must be valid.
        match kind {
            "request" => {
                Request::parse(line).unwrap_or_else(|e| panic!("corpus line invalid ({e}): {line}"));
            }
            _ => {
                RespHeader::parse(line)
                    .unwrap_or_else(|e| panic!("corpus line invalid ({e}): {line}"));
            }
        }
        // (a) Every truncation.
        for end in 0..line.len() {
            if line.is_char_boundary(end) {
                parses_without_panic(kind, &line[..end]);
                truncations += 1;
            }
        }
        // (b) Every single-byte mutation across the spread.
        let bytes = line.as_bytes();
        for pos in 0..bytes.len() {
            for &m in MUTATIONS {
                if bytes[pos] == m {
                    continue;
                }
                let mut mutated = bytes.to_vec();
                mutated[pos] = m;
                // The wire is line-oriented UTF-8-ish; a mutation that
                // breaks UTF-8 arrives at the parser through the same
                // lossy decode the connection handler applies.
                let line = String::from_utf8_lossy(&mutated).into_owned();
                parses_without_panic(kind, &line);
                mutations += 1;
            }
        }
    }
    (truncations, mutations)
}

#[test]
fn every_request_truncation_and_mutation_parses_without_panic() {
    let (truncations, mutations) = sweep("request", REQUEST_CORPUS);
    assert!(truncations > 300, "sweep too small: {truncations} truncations");
    assert!(mutations > 5_000, "sweep too small: {mutations} mutations");
}

#[test]
fn every_header_truncation_and_mutation_parses_without_panic() {
    let (truncations, mutations) = sweep("header", HEADER_CORPUS);
    assert!(truncations > 300, "sweep too small: {truncations} truncations");
    assert!(mutations > 5_000, "sweep too small: {mutations} mutations");
}

#[test]
fn hostile_lengths_are_rejected_typed() {
    // Oversized numeric fields must be typed rejections, not capacity
    // panics downstream.
    for line in [
        "filter tenant=t size=99999999999999999999 seed=1 radius=1",
        "render tenant=t size=8 seed=1 image=18446744073709551615",
        "filter tenant=t size=8 seed=1 radius=1 deadline_ms=99999999999999999999",
        "filter tenant=t size=8 seed=1 radius=1 attempt=4294967296",
    ] {
        assert!(Request::parse(line).is_err(), "must reject: {line}");
    }
    // An oversized bytes= in a reply header parses (the count fits u64)
    // — the *client* bounds the allocation against MAX_BODY; pin that
    // the header-side parse stays typed for absurd values too.
    let absurd = "ok bytes=18446744073709551615 completed=0 failed=0 retried=0 downgraded=0 \
                  max_level=0 shed_units=0 whole=1 cache=miss coalesced=0 dedup=0";
    let parsed = RespHeader::parse(absurd);
    assert!(
        parsed.is_err() || matches!(parsed, Ok(RespHeader::Ok(_))),
        "absurd bytes= must stay typed"
    );
}
