//! Resilient-client conformance: the retry/hedge/failover layer must be
//! invisible on the happy path and lossless under failures.
//!
//! Pinned invariants:
//!
//! * **Transparency** — with faults off, [`ResilientClient`] returns
//!   bytes bitwise identical to the plain [`Client`] for the same
//!   request, across all four memory layouts, in one attempt with no
//!   hedge fired.
//! * **Idempotency** — a retried `req_id` is answered from the dedup
//!   cache with `dedup=1`, identical bytes, and exactly one saved file.
//! * **Failover** — a dead endpoint is routed around; the reply comes
//!   from a healthy replica.
//! * **Hedging** — a stalled replica is raced after the hedge delay and
//!   the healthy replica's reply wins.
//! * **Deadline propagation** — an exhausted budget is a typed local
//!   error, never a `deadline_ms=0` wire request; a request that
//!   expires in the queue is refused with a typed `expired` header.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sfc_server::{
    Client, LayoutChoice, Request, ResilientClient, RespHeader, RetryPolicy, SchedConfig,
    Server, ServerConfig, Service, ServiceConfig,
};

fn start_server(
    svc_cfg: ServiceConfig,
) -> (
    Arc<Service>,
    String,
    Arc<AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    let svc = Service::start(svc_cfg).expect("service starts");
    let server =
        Server::bind("127.0.0.1:0", svc.clone(), ServerConfig::default()).expect("ephemeral bind");
    let addr = server.local_addr().expect("bound addr").to_string();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || {
        server.run().expect("accept loop");
    });
    (svc, addr, flag, handle)
}

fn stop_server(svc: &Arc<Service>, flag: &Arc<AtomicBool>, handle: std::thread::JoinHandle<()>) {
    flag.store(true, Ordering::Relaxed);
    handle.join().expect("accept loop exits");
    svc.drain(Duration::from_secs(10));
}

/// An address that is bound to nothing: bind an ephemeral port, read it,
/// drop the listener. Connections are refused immediately.
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = listener.local_addr().expect("probe addr").to_string();
    drop(listener);
    addr
}

#[test]
fn faults_off_resilient_bytes_match_the_plain_client_bitwise() {
    let (svc, addr, flag, handle) = start_server(ServiceConfig::default());
    let resilient = ResilientClient::new([addr.clone()], RetryPolicy::default(), 11);
    for layout in LayoutChoice::ALL {
        let line = format!(
            "filter tenant=t size=8 seed=3 radius=1 layout={}",
            layout.name()
        );
        let req = Request::parse(&line).expect("valid");
        let mut plain = Client::connect(&addr).expect("plain connect");
        let (ph, pbody) = plain.request(&req).expect("plain reply");
        let (rh, rbody, outcome) = resilient.request_detailed(&req).expect("resilient reply");
        let (RespHeader::Ok(ph), RespHeader::Ok(rh)) = (&ph, &rh) else {
            panic!("expected ok/ok, got {ph:?} / {rh:?}");
        };
        assert_eq!(pbody, rbody, "layout {}: bytes must be bitwise identical", layout.name());
        assert_eq!(ph.bytes, rh.bytes);
        assert_eq!(outcome.attempts, 1, "happy path is one attempt");
        assert!(!outcome.hedged, "no hedge on a healthy single replica");
        assert!(!rh.dedup, "first execution is not a replay");
    }
    stop_server(&svc, &flag, handle);
}

#[test]
fn duplicate_req_id_is_answered_from_the_dedup_cache_with_one_save() {
    let dir = std::env::temp_dir().join(format!("sfc-dedup-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (svc, addr, flag, handle) = start_server(ServiceConfig {
        data_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let line = "filter tenant=t size=8 seed=5 radius=1 save=1 req_id=retry-me";
    let (h1, b1) = client.request_line(line).expect("first reply");
    // The "retry": same tenant + req_id, higher attempt, new connection
    // (the client believes the first reply was lost).
    let mut retry = Client::connect(&addr).expect("reconnect");
    let (h2, b2) = retry
        .request_line(&format!("{line} attempt=2"))
        .expect("retried reply");
    let (RespHeader::Ok(h1), RespHeader::Ok(h2)) = (&h1, &h2) else {
        panic!("expected ok/ok, got {h1:?} / {h2:?}");
    };
    assert!(!h1.dedup, "first execution is fresh");
    assert!(h2.dedup, "second arrival must be a dedup replay");
    assert_eq!(b1, b2, "replayed body is byte-identical");
    let stats = svc.dedup_stats();
    assert!(stats.hits >= 1, "{stats:?}");
    stop_server(&svc, &flag, handle);
    let saved: Vec<_> = std::fs::read_dir(&dir)
        .expect("data dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "vol"))
        .collect();
    assert_eq!(saved.len(), 1, "exactly one save for one logical request: {saved:?}");
    assert!(
        saved[0].file_name().is_some_and(|n| n == "t-retry-me.vol"),
        "save is named by its idempotency key: {saved:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failover_routes_around_a_dead_replica() {
    let (svc, addr, flag, handle) = start_server(ServiceConfig::default());
    let client = ResilientClient::new(
        [dead_addr(), addr],
        RetryPolicy {
            hedge: false, // isolate the failover path
            ..RetryPolicy::default()
        },
        23,
    );
    let req = Request::parse("filter tenant=t size=8 seed=7 radius=1").expect("valid");
    let (header, _, outcome) = client.request_detailed(&req).expect("failover reply");
    assert!(matches!(header, RespHeader::Ok(_)), "got {header:?}");
    assert_eq!(outcome.endpoint, 1, "reply must come from the live replica");
    assert!(outcome.attempts >= 2, "the dead endpoint consumed an attempt");
    stop_server(&svc, &flag, handle);
}

/// A replica that accepts, reads the request line, and never answers —
/// the stalled-server scenario hedging exists for.
fn stalled_replica(hold: Duration) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("stall bind");
    let addr = listener.local_addr().expect("stall addr").to_string();
    let handle = std::thread::spawn(move || {
        // Serve at most a few connections, then exit with the test.
        for stream in listener.incoming().take(4).flatten() {
            let mut line = String::new();
            let _ = BufReader::new(&stream).read_line(&mut line);
            std::thread::sleep(hold); // hold the reply hostage
        }
    });
    (addr, handle)
}

#[test]
fn hedged_read_beats_a_stalled_primary() {
    let (svc, addr, flag, handle) = start_server(ServiceConfig::default());
    let (stall_addr, _stall) = stalled_replica(Duration::from_secs(20));
    let client = ResilientClient::new(
        [stall_addr, addr],
        RetryPolicy {
            hedge_min: Duration::from_millis(40),
            request_timeout: Duration::from_secs(30),
            ..RetryPolicy::default()
        },
        31,
    );
    let req = Request::parse("filter tenant=t size=8 seed=9 radius=1").expect("valid");
    let (header, _, outcome) = client.request_detailed(&req).expect("hedged reply");
    assert!(matches!(header, RespHeader::Ok(_)), "got {header:?}");
    assert!(outcome.hedged, "the stall must trigger a hedge");
    assert!(outcome.hedge_won, "the healthy replica must win the race");
    assert_eq!(outcome.endpoint, 1);
    assert_eq!(outcome.attempts, 1, "a hedge is a race within one attempt, not a retry");
    stop_server(&svc, &flag, handle);
}

#[test]
fn saves_are_never_hedged_but_still_fail_over() {
    let dir = std::env::temp_dir().join(format!("sfc-savefo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (svc, addr, flag, handle) = start_server(ServiceConfig {
        data_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let client = ResilientClient::new([dead_addr(), addr], RetryPolicy::default(), 43);
    let req = Request::parse("filter tenant=t size=8 seed=2 radius=1 save=1").expect("valid");
    let (header, _, outcome) = client.request_detailed(&req).expect("save reply");
    assert!(matches!(header, RespHeader::Ok(_)), "got {header:?}");
    assert!(!outcome.hedged, "saves must not race two executions");
    assert_eq!(outcome.endpoint, 1);
    stop_server(&svc, &flag, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_deadline_is_a_typed_local_error_never_a_wire_request() {
    // Both endpoints refuse connections instantly, so each attempt
    // costs ~nothing and the loop runs until the budget is gone.
    let client = ResilientClient::new(
        [dead_addr(), dead_addr()],
        RetryPolicy {
            max_attempts: 100,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(10),
            budget_cap: 200.0,
            hedge: false,
            ..RetryPolicy::default()
        },
        51,
    );
    let req = Request::parse("filter tenant=t size=8 seed=1 radius=1 deadline_ms=40").expect("valid");
    let err = client.request(&req).expect_err("budget must exhaust");
    // The deadline error is typed; the wire never saw deadline_ms=0
    // (parse would have rejected it server-side as a protocol error).
    assert!(
        matches!(sfc_server::error_kind(&err), "timeout" | "io"),
        "expected timeout or io, got {err:?}"
    );
}

#[test]
fn queue_expired_request_gets_a_typed_expired_header_without_compute() {
    let svc = Service::start(ServiceConfig {
        lanes: 1,
        sched: SchedConfig::default(),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    // Occupy the single lane so the deadlined request waits in queue
    // past its whole budget.
    let blocker = svc
        .submit(Request::parse("filter tenant=z size=12 seed=9 radius=2").expect("valid"))
        .expect("admitted");
    let doomed = svc
        .submit(
            Request::parse("filter tenant=t size=8 seed=1 radius=1 deadline_ms=1").expect("valid"),
        )
        .expect("admitted");
    let resp = doomed
        .wait(Duration::from_secs(30))
        .expect("reply in time");
    match resp.header {
        RespHeader::Expired { deadline_ms, waited_ms } => {
            assert_eq!(deadline_ms, 1);
            assert!(waited_ms >= 1, "waited {waited_ms}ms");
        }
        other => panic!("expected expired, got {other:?}"),
    }
    assert!(resp.body.is_empty(), "expired replies carry no body");
    let _ = blocker.wait(Duration::from_secs(30));
    svc.drain(Duration::from_secs(10));
}
