//! Property tests for the cache model: conservation laws, inclusion-style
//! invariants, and determinism under arbitrary access streams.

use proptest::prelude::*;
use sfc_memsim::{Cache, CacheConfig, CoreSim, HierarchyConfig};

fn small_hierarchy() -> HierarchyConfig {
    HierarchyConfig {
        l1: CacheConfig::new(512, 64, 2),
        l2: CacheConfig::new(2048, 64, 4),
        llc: None,
        tlb: None,
    }
}

/// Strategy: a stream of byte addresses confined to a 64 KiB region so
/// hits actually occur.
fn addr_stream() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..65536, 1..2000)
}

proptest! {
    #[test]
    fn counters_conserve(addrs in addr_stream()) {
        let mut c = Cache::new(CacheConfig::new(1024, 64, 4));
        for &a in &addrs {
            c.access(a);
        }
        let k = c.counters();
        prop_assert_eq!(k.accesses, addrs.len() as u64);
        prop_assert_eq!(k.hits + k.misses, k.accesses);
    }

    #[test]
    fn residency_never_exceeds_capacity(addrs in addr_stream()) {
        let cfg = CacheConfig::new(1024, 64, 4);
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.resident_lines() <= (cfg.size_bytes / cfg.line_bytes) as usize);
        }
    }

    #[test]
    fn misses_bounded_below_by_distinct_lines_cold(addrs in addr_stream()) {
        // A cache can never miss fewer times than the number of distinct
        // lines it is asked for (cold misses are unavoidable).
        let mut c = Cache::new(CacheConfig::new(4096, 64, 8));
        let distinct: std::collections::HashSet<u64> =
            addrs.iter().map(|a| a / 64).collect();
        for &a in &addrs {
            c.access(a);
        }
        prop_assert!(c.counters().misses >= distinct.len() as u64);
    }

    #[test]
    fn fully_resident_working_set_stops_missing(lines in 1u64..8) {
        // Fewer distinct lines than ways in one set: after the cold pass,
        // no evictions can occur anywhere.
        let mut c = Cache::new(CacheConfig::new(512, 64, 8)); // 1 set, 8 ways
        for pass in 0..3 {
            for l in 0..lines {
                let outcome = c.access(l * 64);
                if pass > 0 {
                    prop_assert_eq!(outcome, sfc_memsim::AccessOutcome::Hit);
                }
            }
        }
    }

    #[test]
    fn hierarchy_filtering_invariant(addrs in addr_stream()) {
        // L2 sees exactly L1's misses; reported reads equal issued reads.
        let mut sim = CoreSim::new(&small_hierarchy());
        for &a in &addrs {
            sim.read(a, 4);
        }
        let k = sim.counters();
        prop_assert_eq!(k.reads, addrs.len() as u64);
        prop_assert_eq!(k.l2.accesses, k.l1.misses);
        prop_assert!(k.l2.misses <= k.l1.misses);
    }

    #[test]
    fn determinism(addrs in addr_stream()) {
        let run = || {
            let mut sim = CoreSim::new(&small_hierarchy());
            for &a in &addrs {
                sim.read(a, 4);
            }
            sim.counters()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn smaller_cache_never_misses_less(addrs in addr_stream()) {
        // LRU inclusion property on set-doubling: a cache with the same
        // geometry but double the ways per set cannot miss more.
        let mut small = Cache::new(CacheConfig::new(512, 64, 2));
        let mut big = Cache::new(CacheConfig::new(1024, 64, 4));
        for &a in &addrs {
            small.access(a);
            big.access(a);
        }
        prop_assert!(big.counters().misses <= small.counters().misses);
    }
}
