//! Property-style tests for the cache model: conservation laws,
//! inclusion-style invariants, and determinism under arbitrary access
//! streams. Seeded deterministic sweeps (no external property-testing
//! dependency).

use sfc_core::SplitMix64;
use sfc_memsim::{Cache, CacheConfig, CoreSim, HierarchyConfig};

fn small_hierarchy() -> HierarchyConfig {
    HierarchyConfig {
        l1: CacheConfig::new(512, 64, 2),
        l2: CacheConfig::new(2048, 64, 4),
        llc: None,
        tlb: None,
    }
}

/// A stream of byte addresses confined to a 64 KiB region so hits actually
/// occur.
fn addr_stream(rng: &mut SplitMix64) -> Vec<u64> {
    let len = rng.usize_in(1, 2000);
    (0..len).map(|_| rng.u64_below(65536)).collect()
}

#[test]
fn counters_conserve() {
    let mut rng = SplitMix64::new(0x4001);
    for _ in 0..64 {
        let addrs = addr_stream(&mut rng);
        let mut c = Cache::new(CacheConfig::new(1024, 64, 4));
        for &a in &addrs {
            c.access(a);
        }
        let k = c.counters();
        assert_eq!(k.accesses, addrs.len() as u64);
        assert_eq!(k.hits + k.misses, k.accesses);
    }
}

#[test]
fn residency_never_exceeds_capacity() {
    let mut rng = SplitMix64::new(0x4002);
    for _ in 0..32 {
        let addrs = addr_stream(&mut rng);
        let cfg = CacheConfig::new(1024, 64, 4);
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a);
            assert!(c.resident_lines() <= (cfg.size_bytes / cfg.line_bytes) as usize);
        }
    }
}

#[test]
fn misses_bounded_below_by_distinct_lines_cold() {
    // A cache can never miss fewer times than the number of distinct lines
    // it is asked for (cold misses are unavoidable).
    let mut rng = SplitMix64::new(0x4003);
    for _ in 0..64 {
        let addrs = addr_stream(&mut rng);
        let mut c = Cache::new(CacheConfig::new(4096, 64, 8));
        let distinct: std::collections::HashSet<u64> = addrs.iter().map(|a| a / 64).collect();
        for &a in &addrs {
            c.access(a);
        }
        assert!(c.counters().misses >= distinct.len() as u64);
    }
}

#[test]
fn fully_resident_working_set_stops_missing() {
    // Fewer distinct lines than ways in one set: after the cold pass, no
    // evictions can occur anywhere.
    for lines in 1u64..8 {
        let mut c = Cache::new(CacheConfig::new(512, 64, 8)); // 1 set, 8 ways
        for pass in 0..3 {
            for l in 0..lines {
                let outcome = c.access(l * 64);
                if pass > 0 {
                    assert_eq!(outcome, sfc_memsim::AccessOutcome::Hit);
                }
            }
        }
    }
}

#[test]
fn hierarchy_filtering_invariant() {
    // L2 sees exactly L1's misses; reported reads equal issued reads.
    let mut rng = SplitMix64::new(0x4004);
    for _ in 0..64 {
        let addrs = addr_stream(&mut rng);
        let mut sim = CoreSim::new(&small_hierarchy());
        for &a in &addrs {
            sim.read(a, 4);
        }
        let k = sim.counters();
        assert_eq!(k.reads, addrs.len() as u64);
        assert_eq!(k.l2.accesses, k.l1.misses);
        assert!(k.l2.misses <= k.l1.misses);
    }
}

#[test]
fn determinism() {
    let mut rng = SplitMix64::new(0x4005);
    for _ in 0..16 {
        let addrs = addr_stream(&mut rng);
        let run = || {
            let mut sim = CoreSim::new(&small_hierarchy());
            for &a in &addrs {
                sim.read(a, 4);
            }
            sim.counters()
        };
        assert_eq!(run(), run());
    }
}

#[test]
fn smaller_cache_never_misses_less() {
    // LRU inclusion property on set-doubling: a cache with the same
    // geometry but double the ways per set cannot miss more.
    let mut rng = SplitMix64::new(0x4006);
    for _ in 0..64 {
        let addrs = addr_stream(&mut rng);
        let mut small = Cache::new(CacheConfig::new(512, 64, 2));
        let mut big = Cache::new(CacheConfig::new(1024, 64, 4));
        for &a in &addrs {
            small.access(a);
            big.access(a);
        }
        assert!(big.counters().misses <= small.counters().misses);
    }
}
