//! # sfc-memsim — deterministic cache-hierarchy simulation
//!
//! The paper quantifies memory-system utilization with PAPI hardware
//! counters (`PAPI_L3_TCA` on Ivy Bridge, `L2_DATA_READ_MISS_MEM_FILL` on
//! the Intel MIC). This crate substitutes a deterministic software model
//! driven by the *actual address streams* the kernels generate:
//!
//! * [`cache`] — one set-associative LRU level;
//! * [`hierarchy`] — a core's private L1+L2 ([`CoreSim`]) and the report
//!   type exposing the two paper counters as
//!   [`SimReport::l3_total_cache_accesses`] and
//!   [`SimReport::l2_read_miss_mem_fill`];
//! * [`llc`] — multi-core driver with optional shared last-level cache,
//!   replayed deterministically;
//! * [`platform`] — Ivy Bridge and MIC/KNC presets (and scaled variants
//!   for reduced problem sizes);
//! * [`trace`] — [`TracedGrid`], a `Volume3` wrapper feeding every grid
//!   read into a `CoreSim` so kernels need no modification.
//!
//! ```
//! use sfc_core::{Dims3, Grid3, Volume3, ZOrder3};
//! use sfc_memsim::{platform, CoreSim, TracedGrid};
//!
//! let grid = Grid3::<f32, ZOrder3>::from_fn(Dims3::cube(16), |i, _, _| i as f32);
//! let plat = platform::scaled(&platform::ivy_bridge(), 10);
//! let mut sim = CoreSim::new(&plat.hierarchy);
//! let traced = TracedGrid::at_zero(&grid, &mut sim);
//! for (i, j, k) in Dims3::cube(16).iter() {
//!     traced.get(i, j, k);
//! }
//! assert_eq!(sim.counters().reads, 16 * 16 * 16);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod cost;
pub mod hierarchy;
pub mod llc;
pub mod platform;
pub mod trace;

pub use cache::{AccessOutcome, Cache, CacheConfig, CacheCounters};
pub use cost::CostModel;
pub use hierarchy::{CoreCounters, CoreSim, HierarchyConfig, SimReport, TlbConfig};
pub use llc::{
    assign_threads_to_cores, interleave_round_robin, replay_shared_llc, run_multicore,
    try_run_multicore,
};
pub use platform::{ivy_bridge, mic_knc, scaled, shift_for_volume_edge, Platform};
pub use trace::{TracedGrid, ELEM_BYTES};
