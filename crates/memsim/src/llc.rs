//! Multi-core simulation driver with optional shared last-level cache.
//!
//! Each simulated core runs its (deterministic) work against a private
//! [`CoreSim`]. When the platform has a shared LLC, the per-core L2-miss
//! line streams are then replayed into one shared cache, interleaved
//! round-robin in fixed-size chunks — a deterministic stand-in for the
//! unknowable true interleaving (the paper's headline counters do not
//! depend on it; see [`crate::hierarchy`] docs).

use sfc_core::SfcResult;
use sfc_harness::{Executor, LazyCounter, WorkPlan};

use crate::cache::Cache;
use crate::hierarchy::{CoreCounters, CoreSim, HierarchyConfig, SimReport};

// Process-wide mirrors of the per-run simulation totals: every completed
// multicore run folds its report into these, so the metrics plane sees
// cumulative simulated traffic across all sweeps in the process.
static SIM_RUNS: LazyCounter = LazyCounter::new("memsim.runs");
static SIM_READS: LazyCounter = LazyCounter::new("memsim.reads");
static SIM_WRITES: LazyCounter = LazyCounter::new("memsim.writes");
static L1_HITS: LazyCounter = LazyCounter::new("memsim.l1.hits");
static L1_MISSES: LazyCounter = LazyCounter::new("memsim.l1.misses");
static L2_HITS: LazyCounter = LazyCounter::new("memsim.l2.hits");
static L2_MISSES: LazyCounter = LazyCounter::new("memsim.l2.misses");
static TLB_HITS: LazyCounter = LazyCounter::new("memsim.tlb.hits");
static TLB_MISSES: LazyCounter = LazyCounter::new("memsim.tlb.misses");
static LLC_HITS: LazyCounter = LazyCounter::new("memsim.llc.hits");
static LLC_MISSES: LazyCounter = LazyCounter::new("memsim.llc.misses");

fn record_report_metrics(report: &SimReport) {
    let t = report.total();
    SIM_RUNS.add(1);
    SIM_READS.add(t.reads);
    SIM_WRITES.add(t.writes);
    L1_HITS.add(t.l1.hits);
    L1_MISSES.add(t.l1.misses);
    L2_HITS.add(t.l2.hits);
    L2_MISSES.add(t.l2.misses);
    TLB_HITS.add(t.tlb.hits);
    TLB_MISSES.add(t.tlb.misses);
    if let Some(llc) = &report.llc {
        LLC_HITS.add(llc.hits);
        LLC_MISSES.add(llc.misses);
    }
}

/// Lines replayed from one core before moving to the next.
pub const DEFAULT_LLC_CHUNK: usize = 64;

/// [`run_multicore`] with typed panic isolation: each core simulation runs
/// under the execution engine's [`Executor::try_run`], so a panicking core
/// (a buggy kernel closure, a poisoned trace) is caught, the remaining
/// cores still complete, and the lowest-indexed failure is returned as a
/// typed [`sfc_core::SfcError::WorkerPanic`] instead of aborting the
/// whole sweep.
pub fn try_run_multicore<F>(
    config: &HierarchyConfig,
    ncores: usize,
    parallel: bool,
    work: F,
) -> SfcResult<SimReport>
where
    F: Fn(usize, &mut CoreSim) + Sync,
{
    assert!(ncores > 0, "need at least one core");
    let record = config.llc.is_some();
    let run_one = |core: usize| -> (CoreCounters, Vec<u64>) {
        let mut sim = CoreSim::new(config);
        if record {
            sim.record_misses();
        }
        work(core, &mut sim);
        let trace = sim.take_miss_trace();
        (sim.counters(), trace)
    };

    // One engine unit per core; with `parallel` each thread owns exactly
    // one core under the static split (the historical one-thread-per-core
    // behaviour), otherwise the single-thread serial fast path runs cores
    // in index order. Results land in disjoint slots.
    struct ResultSlots(*mut Option<(CoreCounters, Vec<u64>)>);
    unsafe impl Sync for ResultSlots {}
    let mut results: Vec<Option<(CoreCounters, Vec<u64>)>> = (0..ncores).map(|_| None).collect();
    {
        let slots = ResultSlots(results.as_mut_ptr());
        let slots = &slots;
        let nthreads = if parallel { ncores } else { 1 };
        Executor::new(nthreads).try_run(&WorkPlan::static_round_robin(ncores), |_tid, core| {
            let r = run_one(core);
            // SAFETY: each core index is processed exactly once (engine
            // contract), so the slots are written disjointly.
            unsafe { *slots.0.add(core) = Some(r) };
        })?;
    }
    let results: Vec<(CoreCounters, Vec<u64>)> = results
        .into_iter()
        .map(|r| r.expect("engine processed every core"))
        .collect();

    let per_core: Vec<CoreCounters> = results.iter().map(|(c, _)| *c).collect();
    let llc = config.llc.map(|llc_cfg| {
        let traces: Vec<&[u64]> = results.iter().map(|(_, t)| t.as_slice()).collect();
        replay_shared_llc(llc_cfg, &traces, DEFAULT_LLC_CHUNK)
    });

    let report = SimReport { per_core, llc };
    record_report_metrics(&report);
    Ok(report)
}

/// Run `work(core_id, sim)` for each of `ncores` simulated cores and
/// aggregate counters. Cores run on real threads when `parallel` is true
/// (results are identical either way — each core's stream is independent).
///
/// # Panics
/// Panics if any core simulation panics; use [`try_run_multicore`] to get
/// the failure as a typed error while the other cores still complete.
pub fn run_multicore<F>(
    config: &HierarchyConfig,
    ncores: usize,
    parallel: bool,
    work: F,
) -> SimReport
where
    F: Fn(usize, &mut CoreSim) + Sync,
{
    match try_run_multicore(config, ncores, parallel, work) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// Replay per-core miss streams into a shared cache, taking `chunk`
/// addresses from each stream in turn (round-robin) until all are drained.
pub fn replay_shared_llc(
    config: crate::cache::CacheConfig,
    traces: &[&[u64]],
    chunk: usize,
) -> crate::cache::CacheCounters {
    assert!(chunk > 0);
    let mut cache = Cache::new(config);
    let mut cursors = vec![0usize; traces.len()];
    loop {
        let mut progressed = false;
        for (t, cur) in traces.iter().zip(cursors.iter_mut()) {
            let end = (*cur + chunk).min(t.len());
            for &addr in &t[*cur..end] {
                cache.access(addr);
            }
            progressed |= end > *cur;
            *cur = end;
        }
        if !progressed {
            break;
        }
    }
    cache.counters()
}

/// Map `nthreads` software threads onto `ncores` physical cores the way the
/// paper's platforms do: thread `t` lands on core `t % ncores` (MIC-style
/// balanced placement; with `nthreads <= ncores` it is also the Ivy Bridge
/// "compact" one-thread-per-core case).
pub fn assign_threads_to_cores(nthreads: usize, ncores: usize) -> Vec<Vec<usize>> {
    assert!(nthreads > 0 && ncores > 0);
    let used = ncores.min(nthreads);
    let mut cores = vec![Vec::new(); used];
    for t in 0..nthreads {
        cores[t % used].push(t);
    }
    cores
}

/// Interleave several work-item streams round-robin, one item at a time —
/// the coarse model of hardware threads sharing a core's private caches.
pub fn interleave_round_robin<T: Clone>(streams: &[Vec<T>]) -> Vec<T> {
    let total: usize = streams.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(total);
    let longest = streams.iter().map(|s| s.len()).max().unwrap_or(0);
    for pos in 0..longest {
        for s in streams {
            if let Some(item) = s.get(pos) {
                out.push(item.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    fn config_with_llc() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::new(512, 64, 2),
            l2: CacheConfig::new(2048, 64, 4),
            llc: Some(CacheConfig::new(8192, 64, 4)),
            tlb: None,
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let cfg = config_with_llc();
        let work = |core: usize, sim: &mut CoreSim| {
            for i in 0..1000u64 {
                sim.read((core as u64) * 65536 + i * 68 % 4096, 4);
            }
        };
        let a = run_multicore(&cfg, 4, false, work);
        let b = run_multicore(&cfg, 4, true, work);
        assert_eq!(a.per_core, b.per_core);
        assert_eq!(a.llc, b.llc);
    }

    #[test]
    fn llc_sees_all_l2_misses() {
        let cfg = config_with_llc();
        let report = run_multicore(&cfg, 2, false, |_, sim| {
            for line in 0..100u64 {
                sim.read(line * 64, 4);
            }
        });
        let llc = report.llc.unwrap();
        assert_eq!(llc.accesses, report.l3_total_cache_accesses());
        assert_eq!(llc.accesses, 200, "both cores stream 100 cold lines");
    }

    #[test]
    fn shared_llc_absorbs_cross_core_reuse() {
        // Both cores touch the same 32 lines; the second core's replayed
        // misses should hit in the shared LLC.
        let cfg = config_with_llc();
        let report = run_multicore(&cfg, 2, false, |_, sim| {
            for line in 0..32u64 {
                sim.read(line * 64, 4);
            }
        });
        let llc = report.llc.unwrap();
        assert_eq!(llc.accesses, 64);
        assert!(llc.hits > 0, "cross-core reuse must hit in shared LLC");
    }

    #[test]
    fn no_llc_reports_none() {
        let cfg = HierarchyConfig {
            llc: None,
        tlb: None,
            ..config_with_llc()
        };
        let report = run_multicore(&cfg, 1, false, |_, sim| sim.read(0, 4));
        assert!(report.llc.is_none());
        assert_eq!(report.l2_read_miss_mem_fill(), 1);
    }

    #[test]
    fn thread_to_core_assignment() {
        let cores = assign_threads_to_cores(8, 4);
        assert_eq!(cores, vec![vec![0, 4], vec![1, 5], vec![2, 6], vec![3, 7]]);
        let cores = assign_threads_to_cores(3, 8);
        assert_eq!(cores.len(), 3, "unused cores are dropped");
    }

    #[test]
    fn interleave() {
        let a = vec![1, 2, 3];
        let b = vec![10, 20];
        assert_eq!(interleave_round_robin(&[a, b]), vec![1, 10, 2, 20, 3]);
    }

    #[test]
    fn panicking_core_is_isolated_and_typed() {
        // One bad core costs a typed error, not the process; the healthy
        // cores still run to completion (observable via the counter).
        use std::sync::atomic::{AtomicU64, Ordering};
        let cfg = config_with_llc();
        let completed = AtomicU64::new(0);
        let err = try_run_multicore(&cfg, 4, true, |core, sim| {
            if core == 2 {
                panic!("injected core failure");
            }
            sim.read(core as u64 * 64, 4);
            completed.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap_err();
        assert!(
            matches!(&err, sfc_core::SfcError::WorkerPanic { item: 2, payload }
                if payload.contains("injected core failure")),
            "{err:?}"
        );
        assert_eq!(completed.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn replay_chunking_is_deterministic() {
        let cfg = CacheConfig::new(4096, 64, 4);
        let t0: Vec<u64> = (0..200).map(|i| i * 64).collect();
        let t1: Vec<u64> = (0..200).map(|i| (i % 50) * 64).collect();
        let a = replay_shared_llc(cfg, &[&t0, &t1], 16);
        let b = replay_shared_llc(cfg, &[&t0, &t1], 16);
        assert_eq!(a, b);
        assert_eq!(a.accesses, 400);
    }
}
