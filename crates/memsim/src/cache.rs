//! A single set-associative cache level with LRU replacement.
//!
//! The model is deliberately simple — tags only, true-LRU, no prefetching,
//! no coherence traffic — because the quantity the paper reports
//! (accesses/misses per level) is dominated by capacity/spatial-locality
//! effects, which this model captures exactly and deterministically.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Cache line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// Create a config, validating the geometry.
    ///
    /// # Panics
    /// Panics unless `line_bytes` is a power of two and the capacity is an
    /// exact multiple of `line_bytes * assoc`.
    pub fn new(size_bytes: u64, line_bytes: u64, assoc: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(assoc > 0, "associativity must be non-zero");
        assert_eq!(
            size_bytes % (line_bytes * assoc as u64),
            0,
            "capacity must be a whole number of sets"
        );
        Self {
            size_bytes,
            line_bytes,
            assoc,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.assoc as u64)
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Total accesses presented to this level.
    pub accesses: u64,
    /// Accesses satisfied by this level.
    pub hits: u64,
    /// Accesses that had to go to the next level (or memory).
    pub misses: u64,
}

impl CacheCounters {
    /// Miss ratio in `[0, 1]`; 0 when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &CacheCounters) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// The outcome of presenting one line address to a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Line was resident.
    Hit,
    /// Line was not resident; it has been installed (possibly evicting).
    Miss,
}

/// Sentinel tag for an empty way (no real tag collides with it because
/// tags lose their low bits to the set index and line offset).
const EMPTY: u64 = u64::MAX;

/// A set-associative, true-LRU, tag-only cache.
///
/// LRU is tracked with per-way timestamps (one global monotone counter)
/// instead of recency-ordered lists: a hit touches one stamp, a miss
/// replaces the minimum-stamp way — equivalent replacement decisions,
/// no element shifting in the hot path.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    set_shift: u32,
    set_mask: u64,
    tag_shift: u32,
    assoc: usize,
    /// `assoc` tags per set, flattened; `EMPTY` marks an invalid way.
    tags: Vec<u64>,
    /// LRU stamp per way, parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    counters: CacheCounters,
}

impl Cache {
    /// Build an empty (cold) cache.
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        let ways = (num_sets as usize) * config.assoc;
        Self {
            config,
            set_shift: config.line_bytes.trailing_zeros(),
            set_mask: num_sets - 1,
            tag_shift: num_sets.trailing_zeros(),
            assoc: config.assoc,
            tags: vec![EMPTY; ways],
            stamps: vec![0; ways],
            clock: 0,
            counters: CacheCounters::default(),
        }
    }

    /// Geometry of this cache.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Present one *line-aligned or unaligned* byte address; the line it
    /// falls in is looked up and installed on miss (LRU eviction).
    #[inline]
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        let line = addr >> self.set_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.tag_shift;
        let base = set_idx * self.assoc;
        self.counters.accesses += 1;
        self.clock += 1;
        let ways = &mut self.tags[base..base + self.assoc];
        let mut victim = 0usize;
        let mut victim_stamp = u64::MAX;
        for (w, &t) in ways.iter().enumerate() {
            if t == tag {
                self.stamps[base + w] = self.clock;
                self.counters.hits += 1;
                return AccessOutcome::Hit;
            }
            let s = if t == EMPTY { 0 } else { self.stamps[base + w] };
            if s < victim_stamp {
                victim_stamp = s;
                victim = w;
            }
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        self.counters.misses += 1;
        AccessOutcome::Miss
    }

    /// Drop all resident lines but keep counters.
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
        self.stamps.fill(0);
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64B lines = 512 B.
        Cache::new(CacheConfig::new(512, 64, 2))
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::new(32 * 1024, 64, 8);
        assert_eq!(c.num_sets(), 64);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn bad_geometry_panics() {
        CacheConfig::new(1000, 64, 3);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0), AccessOutcome::Miss);
        assert_eq!(c.access(0), AccessOutcome::Hit);
        assert_eq!(c.access(63), AccessOutcome::Hit, "same line");
        assert_eq!(c.access(64), AccessOutcome::Miss, "next line");
        assert_eq!(c.counters().accesses, 4);
        assert_eq!(c.counters().hits, 2);
        assert_eq!(c.counters().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny(); // 4 sets, 2 ways; stride of 4*64=256 maps to the same set.
        c.access(0); // set 0, tag A
        c.access(256); // set 0, tag B
        c.access(0); // A is now MRU
        assert_eq!(c.access(512), AccessOutcome::Miss); // evicts B (LRU)
        assert_eq!(c.access(0), AccessOutcome::Hit, "A must have survived");
        assert_eq!(c.access(256), AccessOutcome::Miss, "B was evicted");
    }

    #[test]
    fn sequential_within_capacity_all_hits_on_second_pass() {
        let mut c = Cache::new(CacheConfig::new(4096, 64, 4));
        for pass in 0..2 {
            for line in 0..64u64 {
                let outcome = c.access(line * 64);
                if pass == 1 {
                    assert_eq!(outcome, AccessOutcome::Hit, "line {line} second pass");
                }
            }
        }
        assert_eq!(c.counters().misses, 64);
        assert_eq!(c.counters().hits, 64);
    }

    #[test]
    fn streaming_beyond_capacity_always_misses() {
        let mut c = tiny(); // 8 lines capacity
        for pass in 0..2 {
            for line in 0..64u64 {
                let outcome = c.access(line * 64);
                assert_eq!(outcome, AccessOutcome::Miss, "pass {pass} line {line}");
            }
        }
    }

    #[test]
    fn flush_clears_contents_keeps_counters() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.counters().accesses, 1);
        assert_eq!(c.access(0), AccessOutcome::Miss);
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        assert!((c.counters().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheCounters::default().miss_ratio(), 0.0);
    }

    #[test]
    fn merge_counters() {
        let mut a = CacheCounters {
            accesses: 10,
            hits: 7,
            misses: 3,
        };
        a.merge(&CacheCounters {
            accesses: 5,
            hits: 1,
            misses: 4,
        });
        assert_eq!(
            a,
            CacheCounters {
                accesses: 15,
                hits: 8,
                misses: 7
            }
        );
    }
}
