//! A simple cycle-cost model over simulated cache counters.
//!
//! The paper measures wall-clock runtime on 24-core Ivy Bridge and 60-core
//! MIC nodes. When this reproduction runs on hardware with a very different
//! memory system (e.g. a single-core container with an enormous LLC),
//! native wall-clock no longer exhibits the paper's memory-bound behaviour
//! at tractable problem sizes. The figure binaries therefore report, next
//! to native time, a **modeled runtime**: per-core cycles charged per
//! access level from the deterministic simulation, with the parallel
//! runtime taken as the slowest core (threads proceed independently in
//! both kernels — no synchronization inside a run).
//!
//! This is a model, not a measurement; its purpose is to let the *shape*
//! of the paper's runtime panels (who wins, by roughly what factor, where
//! the crossover sits) be regenerated reproducibly. Latencies are typical
//! published figures for the two platforms, not calibrated constants.

use crate::hierarchy::{CoreCounters, SimReport};

/// Cycle charges per event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Arithmetic charged per scalar read issued by the kernel (covers the
    /// kernel's compute: weights, exp, compositing).
    pub compute_per_read: f64,
    /// Charge when a read hits in L1.
    pub l1_hit: f64,
    /// Charge when a read hits in L2.
    pub l2_hit: f64,
    /// Charge when a read misses L2 (LLC/main-memory service, averaged).
    pub l2_miss: f64,
}

impl CostModel {
    /// Ivy Bridge-like latencies (L1 ≈ 4, L2 ≈ 12, L3/mem service ≈ 60).
    pub fn ivy_bridge() -> Self {
        Self {
            compute_per_read: 4.0,
            l1_hit: 4.0,
            l2_hit: 12.0,
            l2_miss: 60.0,
        }
    }

    /// MIC/KNC-like latencies (in-order cores, no L3: misses go to GDDR5,
    /// ≈ 250 cycles).
    pub fn mic_knc() -> Self {
        Self {
            compute_per_read: 8.0,
            l1_hit: 3.0,
            l2_hit: 24.0,
            l2_miss: 250.0,
        }
    }

    /// Cycles charged to one core.
    pub fn core_cycles(&self, c: &CoreCounters) -> f64 {
        self.compute_per_read * c.reads as f64
            + self.l1_hit * c.l1.hits as f64
            + self.l2_hit * c.l2.hits as f64
            + self.l2_miss * c.l2.misses as f64
    }
}

impl SimReport {
    /// Modeled parallel runtime in cycles: the slowest core's charge.
    pub fn modeled_runtime_cycles(&self, model: &CostModel) -> f64 {
        self.per_core
            .iter()
            .map(|c| model.core_cycles(c))
            .fold(0.0, f64::max)
    }

    /// Modeled aggregate work in cycles: the sum over cores.
    pub fn modeled_total_cycles(&self, model: &CostModel) -> f64 {
        self.per_core.iter().map(|c| model.core_cycles(c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheCounters;

    fn counters(reads: u64, l1_hits: u64, l2_hits: u64, l2_misses: u64) -> CoreCounters {
        CoreCounters {
            reads,
            writes: 0,
            l1: CacheCounters {
                accesses: reads,
                hits: l1_hits,
                misses: l2_hits + l2_misses,
            },
            l2: CacheCounters {
                accesses: l2_hits + l2_misses,
                hits: l2_hits,
                misses: l2_misses,
            },
            tlb: CacheCounters::default(),
        }
    }

    #[test]
    fn per_core_charges() {
        let m = CostModel {
            compute_per_read: 1.0,
            l1_hit: 2.0,
            l2_hit: 10.0,
            l2_miss: 100.0,
        };
        let c = counters(10, 6, 3, 1);
        assert_eq!(m.core_cycles(&c), 10.0 + 12.0 + 30.0 + 100.0);
    }

    #[test]
    fn parallel_runtime_is_slowest_core() {
        let m = CostModel::ivy_bridge();
        let report = SimReport {
            per_core: vec![counters(100, 100, 0, 0), counters(1000, 1000, 0, 0)],
            llc: None,
        };
        let slow = m.core_cycles(&report.per_core[1]);
        assert_eq!(report.modeled_runtime_cycles(&m), slow);
        assert!(report.modeled_total_cycles(&m) > slow);
    }

    #[test]
    fn more_misses_cost_more() {
        let m = CostModel::ivy_bridge();
        let few = counters(1000, 990, 10, 0);
        let many = counters(1000, 500, 100, 400);
        assert!(m.core_cycles(&many) > m.core_cycles(&few));
    }

    #[test]
    fn mic_misses_are_pricier_than_ivb() {
        let c = counters(1000, 0, 0, 1000);
        assert!(
            CostModel::mic_knc().core_cycles(&c) > CostModel::ivy_bridge().core_cycles(&c)
        );
    }
}
