//! Per-core private cache hierarchy (L1 + L2) and its counters.
//!
//! The two counters the paper reports are both private-level quantities:
//!
//! * `PAPI_L3_TCA` (Ivy Bridge) — total L3 cache *accesses*, i.e. the
//!   number of requests that missed in L1 and L2: exactly our per-core
//!   L2 miss count summed over cores.
//! * `L2_DATA_READ_MISS_MEM_FILL` (MIC) — L2 read misses filled from
//!   memory; the MIC has no L3, so this is again the per-core L2 miss
//!   count.
//!
//! Shared-LLC behaviour (hit/miss *within* L3) only affects runtime, which
//! we measure natively; it can still be simulated via [`crate::llc`].

use crate::cache::{AccessOutcome, Cache, CacheConfig, CacheCounters};

/// Geometry of a per-core TLB, modeled as a fully-associative LRU array
/// of page translations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
}

impl TlbConfig {
    /// A typical data-TLB: 64 entries × 4 KiB pages.
    pub fn typical() -> Self {
        Self {
            entries: 64,
            page_bytes: 4096,
        }
    }
}

/// Geometry of a simulated core's private hierarchy plus the optional
/// shared last-level cache and optional TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Private L1 data cache.
    pub l1: CacheConfig,
    /// Private L2 cache.
    pub l2: CacheConfig,
    /// Shared last-level cache, if the platform has one.
    pub llc: Option<CacheConfig>,
    /// Per-core data TLB (off by default in the platform presets; the
    /// paper's counters don't include it, but page-granular misses are a
    /// real part of the against-the-grain penalty at 512³ — enable to
    /// study it).
    pub tlb: Option<TlbConfig>,
}

/// Counter snapshot for one simulated core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCounters {
    /// Scalar reads issued by the kernel (not line-granular).
    pub reads: u64,
    /// Scalar writes issued by the kernel (write-allocate; they walk the
    /// same hierarchy and are included in the per-level counters, matching
    /// PAPI's *total* cache-access semantics).
    pub writes: u64,
    /// L1 data cache counters.
    pub l1: CacheCounters,
    /// L2 counters (accesses = L1 misses).
    pub l2: CacheCounters,
    /// TLB counters (zero when no TLB is configured).
    pub tlb: CacheCounters,
}

impl CoreCounters {
    /// Accumulate another core's counters.
    pub fn merge(&mut self, other: &CoreCounters) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.l1.merge(&other.l1);
        self.l2.merge(&other.l2);
        self.tlb.merge(&other.tlb);
    }
}

/// A single core's private L1+L2 simulator.
///
/// Kernels drive it through [`read`](CoreSim::read); L2 misses are counted
/// and (optionally) recorded line-granular for later shared-LLC replay.
#[derive(Debug)]
pub struct CoreSim {
    l1: Cache,
    l2: Cache,
    tlb: Option<Cache>,
    reads: u64,
    writes: u64,
    line_shift: u32,
    /// When `Some`, line addresses that missed L2 are appended here so a
    /// shared LLC can be replayed deterministically afterwards.
    miss_trace: Option<Vec<u64>>,
}

impl CoreSim {
    /// Build a cold private hierarchy.
    pub fn new(config: &HierarchyConfig) -> Self {
        assert_eq!(
            config.l1.line_bytes, config.l2.line_bytes,
            "mixed line sizes are not modeled"
        );
        Self {
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            // A fully associative TLB is a single-set cache with
            // page-sized "lines".
            tlb: config.tlb.map(|t| {
                Cache::new(CacheConfig::new(
                    t.page_bytes * t.entries as u64,
                    t.page_bytes,
                    t.entries,
                ))
            }),
            reads: 0,
            writes: 0,
            line_shift: config.l1.line_bytes.trailing_zeros(),
            miss_trace: None,
        }
    }

    /// Enable recording of L2-miss line addresses (for shared-LLC replay).
    pub fn record_misses(&mut self) {
        self.miss_trace = Some(Vec::new());
    }

    /// Simulate a scalar read of `bytes` bytes at `addr` (touches every
    /// line the access spans; grid elements never span lines in practice).
    #[inline]
    pub fn read(&mut self, addr: u64, bytes: u64) {
        self.reads += 1;
        self.touch(addr, bytes);
    }

    /// Simulate a scalar write (write-allocate: identical tag-state walk
    /// to a read; counted separately).
    #[inline]
    pub fn write(&mut self, addr: u64, bytes: u64) {
        self.writes += 1;
        self.touch(addr, bytes);
    }

    #[inline]
    fn touch(&mut self, addr: u64, bytes: u64) {
        if let Some(tlb) = self.tlb.as_mut() {
            tlb.access(addr);
        }
        let first = addr >> self.line_shift;
        let last = (addr + bytes.max(1) - 1) >> self.line_shift;
        for line in first..=last {
            let byte = line << self.line_shift;
            if self.l1.access(byte) == AccessOutcome::Miss
                && self.l2.access(byte) == AccessOutcome::Miss
            {
                if let Some(t) = self.miss_trace.as_mut() {
                    t.push(byte);
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CoreCounters {
        CoreCounters {
            reads: self.reads,
            writes: self.writes,
            l1: self.l1.counters(),
            l2: self.l2.counters(),
            tlb: self
                .tlb
                .as_ref()
                .map(|t| t.counters())
                .unwrap_or_default(),
        }
    }

    /// Take the recorded L2-miss line trace (empty if recording was off).
    pub fn take_miss_trace(&mut self) -> Vec<u64> {
        self.miss_trace.take().unwrap_or_default()
    }
}

/// Aggregated multi-core simulation results.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Per-core counters, indexed by simulated core id.
    pub per_core: Vec<CoreCounters>,
    /// Shared-LLC counters when an LLC was simulated.
    pub llc: Option<CacheCounters>,
}

impl SimReport {
    /// Sum of all cores' counters.
    pub fn total(&self) -> CoreCounters {
        let mut t = CoreCounters::default();
        for c in &self.per_core {
            t.merge(c);
        }
        t
    }

    /// The `PAPI_L3_TCA` analog: total accesses presented to the L3 level,
    /// i.e. L2 misses summed over cores.
    pub fn l3_total_cache_accesses(&self) -> u64 {
        self.total().l2.misses
    }

    /// The MIC `L2_DATA_READ_MISS_MEM_FILL` analog. With no LLC this is
    /// identical to [`l3_total_cache_accesses`](Self::l3_total_cache_accesses)
    /// (every L2 miss fills from memory); with an LLC simulated it is the
    /// LLC *miss* count.
    pub fn l2_read_miss_mem_fill(&self) -> u64 {
        match &self.llc {
            Some(llc) => llc.misses,
            None => self.total().l2.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::new(512, 64, 2),  // 8 lines
            l2: CacheConfig::new(2048, 64, 4), // 32 lines
            llc: None,
        tlb: None,
        }
    }

    #[test]
    fn l2_sees_only_l1_misses() {
        let mut sim = CoreSim::new(&tiny_config());
        sim.read(0, 4);
        sim.read(4, 4); // same line: L1 hit, never reaches L2
        let c = sim.counters();
        assert_eq!(c.reads, 2);
        assert_eq!(c.l1.accesses, 2);
        assert_eq!(c.l1.misses, 1);
        assert_eq!(c.l2.accesses, 1);
        assert_eq!(c.l2.misses, 1);
    }

    #[test]
    fn working_set_fitting_l2_but_not_l1() {
        let cfg = tiny_config();
        let mut sim = CoreSim::new(&cfg);
        // 16 lines: exceeds L1 (8 lines), fits L2 (32 lines).
        for pass in 0..3 {
            for line in 0..16u64 {
                sim.read(line * 64, 4);
            }
            let c = sim.counters();
            if pass == 0 {
                assert_eq!(c.l2.misses, 16, "cold pass misses everywhere");
            }
        }
        let c = sim.counters();
        // After the cold pass, L1 keeps missing (capacity) but L2 always hits.
        assert_eq!(c.l2.misses, 16);
        assert!(c.l1.misses > 16);
        assert_eq!(c.l2.accesses, c.l1.misses);
    }

    #[test]
    fn straddling_read_touches_two_lines() {
        let mut sim = CoreSim::new(&tiny_config());
        sim.read(62, 4); // spans lines 0 and 1
        let c = sim.counters();
        assert_eq!(c.l1.accesses, 2);
        assert_eq!(c.reads, 1);
    }

    #[test]
    fn miss_trace_records_l2_misses_only() {
        let mut sim = CoreSim::new(&tiny_config());
        sim.record_misses();
        sim.read(0, 4);
        sim.read(0, 4); // L1 hit
        sim.read(64, 4);
        let trace = sim.take_miss_trace();
        assert_eq!(trace, vec![0, 64]);
    }

    #[test]
    fn tlb_counts_page_granular_locality() {
        let cfg = HierarchyConfig {
            tlb: Some(TlbConfig {
                entries: 4,
                page_bytes: 4096,
            }),
            ..tiny_config()
        };
        let mut sim = CoreSim::new(&cfg);
        // 64 accesses within one page: 1 TLB miss.
        for i in 0..64u64 {
            sim.read(i * 64, 4);
        }
        let c = sim.counters();
        assert_eq!(c.tlb.accesses, 64);
        assert_eq!(c.tlb.misses, 1);
        // Large-stride walk over 8 pages with a 4-entry TLB: keeps missing.
        let mut sim = CoreSim::new(&cfg);
        for _pass in 0..2 {
            for p in 0..8u64 {
                sim.read(p * 4096, 4);
            }
        }
        assert_eq!(sim.counters().tlb.misses, 16, "thrashing 8 pages in 4 entries");
    }

    #[test]
    fn no_tlb_reports_zero_counters() {
        let mut sim = CoreSim::new(&tiny_config());
        sim.read(0, 4);
        assert_eq!(sim.counters().tlb, crate::cache::CacheCounters::default());
    }

    #[test]
    fn typical_tlb_geometry() {
        let t = TlbConfig::typical();
        assert_eq!(t.entries, 64);
        assert_eq!(t.page_bytes, 4096);
    }

    #[test]
    fn report_totals_and_analogs() {
        let cfg = tiny_config();
        let mut a = CoreSim::new(&cfg);
        let mut b = CoreSim::new(&cfg);
        a.read(0, 4);
        b.read(0, 4);
        b.read(4096, 4);
        a.write(4096, 4);
        let report = SimReport {
            per_core: vec![a.counters(), b.counters()],
            llc: None,
        };
        assert_eq!(report.total().reads, 3);
        assert_eq!(report.total().writes, 1);
        // Three cold read lines + one cold written line.
        assert_eq!(report.l3_total_cache_accesses(), 4);
        assert_eq!(report.l2_read_miss_mem_fill(), 4);
    }
}
