//! Platform presets matching the paper's two test systems, plus scaled
//! variants for reduced problem sizes.
//!
//! * **Ivy Bridge** (NERSC Edison node): per the paper, each core has a
//!   private 64 KB L1 (we simulate the 32 KB *data* half — instruction
//!   fetch is outside a data-layout study) and a 256 KB private L2; all
//!   cores share a 30 MB L3. Our set-associative model needs a
//!   power-of-two set count, so the shared LLC is modeled at 32 MB/16-way.
//! * **MIC / Knight's Corner** (NERSC Babbage accelerator): 32 KB L1d and
//!   512 KB L2 per core, no L3; 60 cores of which 59 are available to the
//!   application, each supporting 4 hardware threads *sharing* the core's
//!   private caches.
//!
//! The scaled variants divide every capacity by a power of two. Counter
//! experiments run at reduced volume sizes (e.g. 64³ instead of 512³); to
//! keep the decisive working-set-to-capacity ratios identical to the
//! full-size experiment, the caches are scaled **linearly with the volume
//! edge** (see [`shift_for_volume_edge`] and EXPERIMENTS.md).

use crate::cache::CacheConfig;
use crate::cost::CostModel;
use crate::hierarchy::HierarchyConfig;

/// A named platform model: cache geometry plus the paper's concurrency
/// sweep and counter label.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Human-readable name ("IvyBridge", "MIC"…).
    pub name: String,
    /// Cache geometry.
    pub hierarchy: HierarchyConfig,
    /// Physical cores available to the application.
    pub cores: usize,
    /// Thread counts the paper sweeps on this platform.
    pub concurrency: Vec<usize>,
    /// Name of the memory-system counter the paper reports here.
    pub counter_name: String,
    /// Cycle-cost model used for modeled runtimes on this platform.
    pub cost: CostModel,
}

/// Full-size Ivy Bridge model (Edison compute node, both sockets).
pub fn ivy_bridge() -> Platform {
    Platform {
        name: "IvyBridge".to_string(),
        hierarchy: HierarchyConfig {
            l1: CacheConfig::new(32 * 1024, 64, 8),
            l2: CacheConfig::new(256 * 1024, 64, 8),
            llc: Some(CacheConfig::new(32 * 1024 * 1024, 64, 16)),
            tlb: None,
        },
        cores: 24,
        concurrency: vec![2, 4, 6, 8, 10, 12, 18, 24],
        counter_name: "PAPI_L3_TCA".to_string(),
        cost: CostModel::ivy_bridge(),
    }
}

/// Full-size MIC / Knight's Corner model (one 5100P card, 59 usable cores).
pub fn mic_knc() -> Platform {
    Platform {
        name: "MIC".to_string(),
        hierarchy: HierarchyConfig {
            l1: CacheConfig::new(32 * 1024, 64, 8),
            l2: CacheConfig::new(512 * 1024, 64, 8),
            llc: None,
        tlb: None,
        },
        cores: 59,
        concurrency: vec![59, 118, 177, 236],
        counter_name: "L2_DATA_READ_MISS_MEM_FILL".to_string(),
        cost: CostModel::mic_knc(),
    }
}

/// Scale a platform's cache capacities down by `2^shift`, clamping so each
/// level keeps at least one set. Used when the simulated dataset is
/// `2^shift` times smaller than the paper's 512³ so that all
/// footprint-to-capacity ratios are preserved.
pub fn scaled(platform: &Platform, shift: u32) -> Platform {
    let scale = |c: CacheConfig| -> CacheConfig {
        let min = c.line_bytes * c.assoc as u64; // one set
        CacheConfig::new((c.size_bytes >> shift).max(min), c.line_bytes, c.assoc)
    };
    Platform {
        name: format!("{}/2^{}", platform.name, shift),
        hierarchy: HierarchyConfig {
            l1: scale(platform.hierarchy.l1),
            l2: scale(platform.hierarchy.l2),
            llc: platform.hierarchy.llc.map(scale),
        tlb: None,
        },
        cores: platform.cores,
        concurrency: platform.concurrency.clone(),
        counter_name: platform.counter_name.clone(),
        cost: platform.cost,
    }
}

impl Platform {
    /// The value of this platform's paper counter for a simulation report:
    /// `PAPI_L3_TCA` (accesses presented to the L3 = L2 misses) on
    /// platforms with a shared LLC, `L2_DATA_READ_MISS_MEM_FILL` (L2
    /// misses filled from memory) on platforms without one.
    pub fn counter_value(&self, report: &crate::hierarchy::SimReport) -> u64 {
        if self.hierarchy.llc.is_some() {
            report.l3_total_cache_accesses()
        } else {
            report.l2_read_miss_mem_fill()
        }
    }
}

/// Cache-scaling shift for a cubic dataset of edge `n` relative to the
/// paper's 512³ (0 when `n >= 512`).
///
/// The scale is **linear in the edge** (`512/n`), not cubic in the
/// footprint: the working sets that decide the paper's private-cache hit
/// rates scale linearly with the edge — a stencil's slab of array-order
/// rows is `(2r+1)² · n` elements, and a ray's traversal footprint is
/// `O(n)` lines — so dividing capacities by `512/n` preserves exactly the
/// fits-in-L1/L2 relationships of the full-size experiment. (Whole-volume
/// LLC residency scales with n³ and is *not* preserved; the paper's
/// counters are private-cache misses, which don't depend on it.)
pub fn shift_for_volume_edge(n: usize) -> u32 {
    if n >= 512 {
        0
    } else {
        crate::platform::log2_ceil(512 / n)
    }
}

fn log2_ceil(x: usize) -> u32 {
    sfc_core::bits_for(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ivy_bridge_geometry() {
        let p = ivy_bridge();
        assert_eq!(p.hierarchy.l1.num_sets(), 64);
        assert_eq!(p.hierarchy.l2.num_sets(), 512);
        assert_eq!(p.hierarchy.llc.unwrap().num_sets(), 32768);
        assert_eq!(p.concurrency, vec![2, 4, 6, 8, 10, 12, 18, 24]);
    }

    #[test]
    fn mic_has_no_llc() {
        let p = mic_knc();
        assert!(p.hierarchy.llc.is_none());
        assert_eq!(p.cores, 59);
        assert_eq!(p.hierarchy.l2.size_bytes, 512 * 1024);
    }

    #[test]
    fn scaling_divides_capacities() {
        let p = scaled(&ivy_bridge(), 6);
        assert_eq!(p.hierarchy.l1.size_bytes, 512);
        assert_eq!(p.hierarchy.l2.size_bytes, 4096);
        assert_eq!(p.hierarchy.llc.unwrap().size_bytes, 512 * 1024);
        assert!(p.name.contains("2^6"));
    }

    #[test]
    fn scaling_clamps_to_one_set() {
        let p = scaled(&ivy_bridge(), 30);
        let l1 = p.hierarchy.l1;
        assert_eq!(l1.size_bytes, l1.line_bytes * l1.assoc as u64);
        assert_eq!(l1.num_sets(), 1);
    }

    #[test]
    fn shift_for_edges() {
        assert_eq!(shift_for_volume_edge(512), 0);
        assert_eq!(shift_for_volume_edge(1024), 0);
        assert_eq!(shift_for_volume_edge(256), 1);
        assert_eq!(shift_for_volume_edge(128), 2);
        assert_eq!(shift_for_volume_edge(64), 3);
    }
}
