//! Address-tracing volume wrapper.
//!
//! [`TracedGrid`] implements `sfc_core::Volume3` over a borrowed grid while
//! feeding every element read into a [`CoreSim`]. Kernels that are generic
//! over `Volume3` run unmodified; the monomorphized tracing variant is only
//! used for counter experiments, so the timing path pays zero overhead.

use std::cell::RefCell;

use sfc_core::{Dims3, Grid3, Layout3, Volume3};

use crate::hierarchy::CoreSim;

/// Bytes per volume element (all paper volumes are 4-byte floats).
pub const ELEM_BYTES: u64 = 4;

/// A read-tracing view of a grid, bound to one simulated core.
///
/// Not `Sync` (the simulator is interior-mutable); each simulated core
/// constructs its own `TracedGrid` inside its own thread.
pub struct TracedGrid<'g, 's, L: Layout3> {
    grid: &'g Grid3<f32, L>,
    sim: RefCell<&'s mut CoreSim>,
    base_addr: u64,
}

impl<'g, 's, L: Layout3> TracedGrid<'g, 's, L> {
    /// Wrap `grid`, recording reads into `sim` as if the backing buffer
    /// started at byte address `base_addr`.
    pub fn new(grid: &'g Grid3<f32, L>, sim: &'s mut CoreSim, base_addr: u64) -> Self {
        Self {
            grid,
            sim: RefCell::new(sim),
            base_addr,
        }
    }

    /// Wrap with a base address of zero (single-array experiments).
    pub fn at_zero(grid: &'g Grid3<f32, L>, sim: &'s mut CoreSim) -> Self {
        Self::new(grid, sim, 0)
    }

    /// Run `f` with mutable access to the underlying simulator — used by
    /// drivers that also want to trace *writes* (e.g. a kernel's output
    /// stores) through the same core.
    pub fn with_sim<R>(&self, f: impl FnOnce(&mut CoreSim) -> R) -> R {
        f(&mut self.sim.borrow_mut())
    }

    /// Storage slot the wrapped grid uses for a coordinate (so drivers can
    /// compute output-write addresses under the same layout).
    pub fn index_of(&self, i: usize, j: usize, k: usize) -> usize {
        self.grid.index_of(i, j, k)
    }
}

impl<L: Layout3> Volume3 for TracedGrid<'_, '_, L> {
    #[inline]
    fn dims(&self) -> Dims3 {
        self.grid.dims()
    }

    #[inline]
    fn get(&self, i: usize, j: usize, k: usize) -> f32 {
        let idx = self.grid.index_of(i, j, k);
        self.sim
            .borrow_mut()
            .read(self.base_addr + idx as u64 * ELEM_BYTES, ELEM_BYTES);
        self.grid.storage()[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::hierarchy::HierarchyConfig;
    use sfc_core::{ArrayOrder3, ZOrder3};

    fn cfg() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::new(512, 64, 2),
            l2: CacheConfig::new(2048, 64, 4),
            llc: None,
        tlb: None,
        }
    }

    #[test]
    fn traced_reads_match_grid_values() {
        let g = Grid3::<f32, ZOrder3>::from_fn(Dims3::cube(8), |i, j, k| {
            (i * 64 + j * 8 + k) as f32
        });
        let mut sim = CoreSim::new(&cfg());
        let t = TracedGrid::at_zero(&g, &mut sim);
        for (i, j, k) in Dims3::cube(8).iter() {
            assert_eq!(t.get(i, j, k), g.get(i, j, k));
        }
        assert_eq!(sim.counters().reads, 512);
    }

    #[test]
    fn layout_determines_addresses() {
        // Walking x sequentially: array order touches 1 line per 16
        // elements; z-order of an 8-cube touches a new "line" more often
        // because consecutive x indices are 1 apart only within pairs.
        let dims = Dims3::cube(16);
        let a = Grid3::<f32, ArrayOrder3>::from_fn(dims, |_, _, _| 0.0);
        let z = Grid3::<f32, ZOrder3>::from_fn(dims, |_, _, _| 0.0);

        let mut sim_a = CoreSim::new(&cfg());
        {
            let t = TracedGrid::at_zero(&a, &mut sim_a);
            for i in 0..16 {
                t.get(i, 3, 3);
            }
        }
        let mut sim_z = CoreSim::new(&cfg());
        {
            let t = TracedGrid::at_zero(&z, &mut sim_z);
            for i in 0..16 {
                t.get(i, 3, 3);
            }
        }
        // Array order: 16 consecutive floats = 1 cache line.
        assert_eq!(sim_a.counters().l1.misses, 1);
        // Z-order scatters an x-run of a single pencil across blocks.
        assert!(sim_z.counters().l1.misses > 1);
    }

    #[test]
    fn base_address_offsets_traffic() {
        let g = Grid3::<f32, ArrayOrder3>::from_fn(Dims3::cube(4), |_, _, _| 1.0);
        let mut sim = CoreSim::new(&cfg());
        {
            let t0 = TracedGrid::new(&g, &mut sim, 0);
            t0.get(0, 0, 0);
        }
        {
            let t1 = TracedGrid::new(&g, &mut sim, 1 << 20);
            t1.get(0, 0, 0);
        }
        // Same logical element, different base => two distinct lines.
        assert_eq!(sim.counters().l1.misses, 2);
    }

    #[test]
    fn clamped_reads_go_through_tracing() {
        let g = Grid3::<f32, ArrayOrder3>::from_fn(Dims3::cube(4), |_, _, _| 2.0);
        let mut sim = CoreSim::new(&cfg());
        let t = TracedGrid::at_zero(&g, &mut sim);
        assert_eq!(t.get_clamped(-3, 0, 0), 2.0);
        assert_eq!(sim.counters().reads, 1);
    }
}
