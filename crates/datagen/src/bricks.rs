//! Brick decomposition for out-of-core volumes.
//!
//! The brick store persists a volume as fixed-size cubic bricks so that a
//! bounding-box read touches a handful of contiguous on-disk chunks
//! instead of a comb of scattered scanlines (the Zarr spatial-chunking
//! pattern). This module owns the *geometry* of that decomposition —
//! mapping voxels to bricks, brick ids to volume origins, and bricks to
//! their on-disk order along a space-filling curve — plus the copy
//! routines that move one brick between a [`Volume3`] and a flat buffer.
//! The crash-safety machinery (checksums, manifest, journal) lives in
//! `sfc-store`; keeping the geometry here lets datagen import volumes
//! into brick form without depending on the store.
//!
//! Within a brick, samples are row-major over the brick's local
//! coordinates (`x` fastest). Bricks on the high faces of a volume whose
//! dimensions are not multiples of the edge are zero-padded to the full
//! `edge³` slot, so every slot has one fixed byte size.

use sfc_core::{
    ArrayOrder3, Dims3, HilbertOrder3, Layout3, LayoutKind, SfcError, SfcResult, Tiled3,
    Volume3, ZOrder3,
};

/// Geometry of a volume's decomposition into cubic bricks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrickGeom {
    dims: Dims3,
    edge: usize,
    bricks: Dims3,
}

impl BrickGeom {
    /// Describe the decomposition of a `dims` volume into `edge`-cubed
    /// bricks. Bricks per axis is the ceiling division, so the high faces
    /// may be partial (they are padded when extracted).
    pub fn try_new(dims: Dims3, edge: usize) -> SfcResult<Self> {
        if edge == 0 {
            return Err(SfcError::ShapeMismatch {
                what: "BrickGeom",
                expected: "brick edge >= 1".into(),
                actual: "edge 0".into(),
            });
        }
        let bricks = Dims3::new(
            dims.nx.div_ceil(edge),
            dims.ny.div_ceil(edge),
            dims.nz.div_ceil(edge),
        );
        // Reject decompositions whose per-brick byte size would overflow
        // downstream offset arithmetic.
        let slot = edge
            .checked_mul(edge)
            .and_then(|e2| e2.checked_mul(edge))
            .and_then(|e3| e3.checked_mul(4));
        if slot.is_none() {
            return Err(SfcError::ShapeMismatch {
                what: "BrickGeom",
                expected: "brick byte size within usize".into(),
                actual: format!("edge {edge}"),
            });
        }
        Ok(Self { dims, edge, bricks })
    }

    /// Panicking variant of [`BrickGeom::try_new`] for trusted inputs.
    pub fn new(dims: Dims3, edge: usize) -> Self {
        match Self::try_new(dims, edge) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Logical dimensions of the decomposed volume.
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// Brick edge length in voxels.
    pub fn edge(&self) -> usize {
        self.edge
    }

    /// Bricks per axis.
    pub fn brick_dims(&self) -> Dims3 {
        self.bricks
    }

    /// Total number of bricks.
    pub fn brick_count(&self) -> usize {
        self.bricks.len()
    }

    /// Samples per brick slot (`edge³`, padding included).
    pub fn brick_len(&self) -> usize {
        self.edge * self.edge * self.edge
    }

    /// Row-major brick id for a brick coordinate.
    pub fn brick_id(&self, bi: usize, bj: usize, bk: usize) -> usize {
        debug_assert!(self.bricks.contains(bi, bj, bk));
        bi + self.bricks.nx * (bj + self.bricks.ny * bk)
    }

    /// Brick coordinate for a row-major brick id.
    pub fn brick_coord(&self, id: usize) -> (usize, usize, usize) {
        debug_assert!(id < self.brick_count());
        let bi = id % self.bricks.nx;
        let rest = id / self.bricks.nx;
        (bi, rest % self.bricks.ny, rest / self.bricks.ny)
    }

    /// Volume-space coordinate of a brick's low corner.
    pub fn brick_origin(&self, id: usize) -> (usize, usize, usize) {
        let (bi, bj, bk) = self.brick_coord(id);
        (bi * self.edge, bj * self.edge, bk * self.edge)
    }

    /// In-bounds extent of a brick (full `edge` except on partial high
    /// faces).
    pub fn brick_extent(&self, id: usize) -> (usize, usize, usize) {
        let (ox, oy, oz) = self.brick_origin(id);
        (
            self.edge.min(self.dims.nx - ox),
            self.edge.min(self.dims.ny - oy),
            self.edge.min(self.dims.nz - oz),
        )
    }

    /// Id of the brick containing a voxel.
    pub fn brick_of_voxel(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(self.dims.contains(i, j, k));
        self.brick_id(i / self.edge, j / self.edge, k / self.edge)
    }

    /// Offset of a voxel inside its brick's row-major slot buffer.
    pub fn offset_in_brick(&self, i: usize, j: usize, k: usize) -> usize {
        let e = self.edge;
        (i % e) + e * ((j % e) + e * (k % e))
    }

    /// Brick ids in on-disk order: the brick *grid* is traversed along
    /// the space-filling curve `kind` prescribes, so spatially adjacent
    /// bricks land in adjacent slots of the store file. The returned
    /// vector maps slot number → brick id and is a permutation of
    /// `0..brick_count()`.
    pub fn sfc_order(&self, kind: LayoutKind) -> Vec<usize> {
        let b = self.bricks;
        let rank: Box<dyn Fn(usize, usize, usize) -> usize> = match kind {
            LayoutKind::ArrayOrder => {
                let l = ArrayOrder3::new(b);
                Box::new(move |i, j, k| l.index(i, j, k))
            }
            LayoutKind::ZOrder => {
                let l = ZOrder3::new(b);
                Box::new(move |i, j, k| l.index(i, j, k))
            }
            LayoutKind::Tiled => {
                let l = Tiled3::new(b);
                Box::new(move |i, j, k| l.index(i, j, k))
            }
            LayoutKind::Hilbert => {
                let l = HilbertOrder3::new(b);
                Box::new(move |i, j, k| l.index(i, j, k))
            }
        };
        let mut ids: Vec<usize> = (0..self.brick_count()).collect();
        ids.sort_by_key(|&id| {
            let (bi, bj, bk) = self.brick_coord(id);
            rank(bi, bj, bk)
        });
        ids
    }
}

/// Copy brick `id` out of a volume into `dst` (length [`BrickGeom::brick_len`],
/// row-major within the brick). Slots past the volume boundary are
/// zero-filled so partial bricks serialize at the same size as full ones.
///
/// # Panics
/// Panics if `dst.len() != geom.brick_len()` or `id` is out of range.
pub fn extract_brick(vol: &impl Volume3, geom: &BrickGeom, id: usize, dst: &mut [f32]) {
    assert_eq!(dst.len(), geom.brick_len(), "brick buffer size");
    assert!(id < geom.brick_count(), "brick id {id} out of range");
    assert_eq!(vol.dims(), geom.dims(), "volume/geometry dims");
    let e = geom.edge();
    let (ox, oy, oz) = geom.brick_origin(id);
    let (ex, ey, ez) = geom.brick_extent(id);
    if (ex, ey, ez) != (e, e, e) {
        dst.fill(0.0);
    }
    for z in 0..ez {
        for y in 0..ey {
            let row = &mut dst[e * (y + e * z)..][..ex];
            vol.gather_axis_run(ox, oy + y, oz + z, sfc_core::Axis::X, row);
        }
    }
}

/// Copy a brick buffer (as produced by [`extract_brick`]) back into a
/// row-major volume slice of `geom.dims().len()` elements. Padding slots
/// are ignored.
///
/// # Panics
/// Panics on any size mismatch or out-of-range `id`.
pub fn insert_brick(geom: &BrickGeom, id: usize, src: &[f32], volume: &mut [f32]) {
    assert_eq!(src.len(), geom.brick_len(), "brick buffer size");
    assert_eq!(volume.len(), geom.dims().len(), "row-major volume size");
    assert!(id < geom.brick_count(), "brick id {id} out of range");
    let d = geom.dims();
    let e = geom.edge();
    let (ox, oy, oz) = geom.brick_origin(id);
    let (ex, ey, ez) = geom.brick_extent(id);
    for z in 0..ez {
        for y in 0..ey {
            let src_row = &src[e * (y + e * z)..][..ex];
            let dst_base = ox + d.nx * ((oy + y) + d.ny * (oz + z));
            volume[dst_base..dst_base + ex].copy_from_slice(src_row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use sfc_core::Grid3;

    #[test]
    fn geometry_covers_every_voxel_exactly_once() {
        let dims = Dims3::new(13, 8, 5); // deliberately non-multiples
        let geom = BrickGeom::new(dims, 4);
        assert_eq!(geom.brick_dims(), Dims3::new(4, 2, 2));
        assert_eq!(geom.brick_count(), 16);
        let mut seen = vec![0u32; dims.len()];
        for id in 0..geom.brick_count() {
            let (ox, oy, oz) = geom.brick_origin(id);
            let (ex, ey, ez) = geom.brick_extent(id);
            for (dz, dy, dx) in
                (0..ez).flat_map(|z| (0..ey).flat_map(move |y| (0..ex).map(move |x| (z, y, x))))
            {
                let (i, j, k) = (ox + dx, oy + dy, oz + dz);
                assert_eq!(geom.brick_of_voxel(i, j, k), id);
                seen[i + dims.nx * (j + dims.ny * k)] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "partition, not a cover");
    }

    #[test]
    fn brick_roundtrip_reconstructs_the_volume() {
        let dims = Dims3::new(11, 6, 9);
        let values = patterns::ramp(dims);
        let grid: Grid3<f32, sfc_core::ZOrder3> = Grid3::from_row_major(dims, &values);
        let geom = BrickGeom::new(dims, 4);
        let mut rebuilt = vec![f32::NAN; dims.len()];
        let mut brick = vec![0.0f32; geom.brick_len()];
        for id in 0..geom.brick_count() {
            extract_brick(&grid, &geom, id, &mut brick);
            insert_brick(&geom, id, &brick, &mut rebuilt);
        }
        assert_eq!(rebuilt, values, "extract+insert is the identity");
    }

    #[test]
    fn partial_bricks_are_zero_padded() {
        let dims = Dims3::cube(5);
        let geom = BrickGeom::new(dims, 4);
        let grid: Grid3<f32, sfc_core::ArrayOrder3> =
            Grid3::from_fn(dims, |_, _, _| 1.0);
        let mut brick = vec![f32::NAN; geom.brick_len()];
        // Brick (1,1,1) holds a single in-bounds voxel; the rest must be 0.
        let id = geom.brick_id(1, 1, 1);
        extract_brick(&grid, &geom, id, &mut brick);
        assert_eq!(brick[0], 1.0);
        assert!(brick[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn offset_in_brick_matches_extraction_order() {
        let dims = Dims3::new(7, 7, 7);
        let geom = BrickGeom::new(dims, 4);
        let values = patterns::ramp(dims);
        let grid: Grid3<f32, sfc_core::ArrayOrder3> = Grid3::from_row_major(dims, &values);
        let mut brick = vec![0.0f32; geom.brick_len()];
        for id in 0..geom.brick_count() {
            extract_brick(&grid, &geom, id, &mut brick);
            let (ox, oy, oz) = geom.brick_origin(id);
            let (ex, ey, ez) = geom.brick_extent(id);
            for (z, y, x) in (0..ez)
                .flat_map(|z| (0..ey).flat_map(move |y| (0..ex).map(move |x| (z, y, x))))
            {
                let (i, j, k) = (ox + x, oy + y, oz + z);
                assert_eq!(
                    brick[geom.offset_in_brick(i, j, k)],
                    grid.get(i, j, k),
                    "voxel ({i},{j},{k}) in brick {id}"
                );
            }
        }
    }

    #[test]
    fn sfc_order_is_a_permutation_for_all_kinds() {
        let geom = BrickGeom::new(Dims3::new(20, 12, 8), 4);
        for kind in LayoutKind::ALL {
            let order = geom.sfc_order(kind);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                (0..geom.brick_count()).collect::<Vec<_>>(),
                "{kind:?} must visit every brick once"
            );
        }
        // Z-order on a 2x2x2 brick grid interleaves axes: the second slot
        // is the +x neighbor, the third the +y neighbor.
        let g2 = BrickGeom::new(Dims3::cube(8), 4);
        let z = g2.sfc_order(LayoutKind::ZOrder);
        assert_eq!(z[0], g2.brick_id(0, 0, 0));
        assert_eq!(z[1], g2.brick_id(1, 0, 0));
        assert_eq!(z[2], g2.brick_id(0, 1, 0));
    }

    #[test]
    fn edge_zero_is_a_typed_error() {
        assert!(BrickGeom::try_new(Dims3::cube(8), 0).is_err());
    }
}
