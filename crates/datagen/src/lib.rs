//! # sfc-datagen — deterministic synthetic volumes and I/O
//!
//! The paper evaluates on two real 512³ datasets (an MRI head scan and a
//! combustion simulation field) that are not redistributable. This crate
//! synthesizes deterministic stand-ins with the same *access-pattern
//! relevant* characteristics (see DESIGN.md §2 for the substitution
//! argument), plus raw-volume I/O so the real data can be dropped in.
//!
//! * [`phantom`] — MRI-like head phantom (shells, ventricles, lesions,
//!   magnitude noise) for the bilateral-filter experiments;
//! * [`combustion`] — turbulence-plus-sheets field for the volume-rendering
//!   experiments;
//! * [`patterns`] — analytic test fields (ramp, sphere, checkerboard);
//! * [`noise`] — the underlying value-noise/fBm machinery;
//! * [`io`] — raw `f32` volumes, checksummed `SFCV` containers, PGM/PPM
//!   images;
//! * [`bricks`] — cubic-brick decomposition geometry and extract/insert
//!   copies, feeding the out-of-core `sfc-store` crate.

#![warn(missing_docs)]

pub mod bricks;
pub mod combustion;
pub mod io;
pub mod noise;
pub mod patterns;
pub mod phantom;

pub use bricks::{extract_brick, insert_brick, BrickGeom};
pub use combustion::{combustion_field, CombustionParams};
pub use io::{
    fnv1a64, load_raw_f32, load_volume, normalize_to_u8, save_raw_f32, save_volume, slice_z,
    try_slice_z, write_pgm, write_ppm,
};
pub use noise::{Fbm3, ValueNoise3};
pub use phantom::{mri_phantom, PhantomParams};

use sfc_core::{Dims3, Grid3, Layout3};

/// Build a grid of the requested layout directly from a generator's
/// row-major output.
pub fn grid_from_row_major<L: Layout3>(dims: Dims3, values: &[f32]) -> Grid3<f32, L> {
    Grid3::from_row_major(dims, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::ZOrder3;

    #[test]
    fn grid_from_generator() {
        let dims = Dims3::cube(8);
        let values = patterns::ramp(dims);
        let g: Grid3<f32, ZOrder3> = grid_from_row_major(dims, &values);
        assert_eq!(g.to_row_major(), values);
    }
}
