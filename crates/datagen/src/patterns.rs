//! Simple analytic test volumes (ramps, spheres, checkerboards).
//!
//! These are primarily for unit and property tests, where an exact closed
//! form for the expected value is useful.

use sfc_core::Dims3;

/// Linear ramp `i + nx*j + nx*ny*k`, normalized to `[0, 1]`.
pub fn ramp(dims: Dims3) -> Vec<f32> {
    let n = dims.len() as f32;
    dims.iter()
        .map(|(i, j, k)| (i + dims.nx * j + dims.nx * dims.ny * k) as f32 / n)
        .collect()
}

/// Constant field.
pub fn constant(dims: Dims3, value: f32) -> Vec<f32> {
    vec![value; dims.len()]
}

/// Binary checkerboard with cubic cells of `cell` voxels.
pub fn checkerboard(dims: Dims3, cell: usize) -> Vec<f32> {
    assert!(cell > 0);
    dims.iter()
        .map(|(i, j, k)| (((i / cell) + (j / cell) + (k / cell)) % 2) as f32)
        .collect()
}

/// Solid sphere of `radius` (in voxels) centered in the volume:
/// 1 inside, 0 outside.
pub fn sphere(dims: Dims3, radius: f32) -> Vec<f32> {
    let (cx, cy, cz) = (
        dims.nx as f32 / 2.0,
        dims.ny as f32 / 2.0,
        dims.nz as f32 / 2.0,
    );
    dims.iter()
        .map(|(i, j, k)| {
            let d2 = (i as f32 + 0.5 - cx).powi(2)
                + (j as f32 + 0.5 - cy).powi(2)
                + (k as f32 + 0.5 - cz).powi(2);
            if d2 <= radius * radius {
                1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Smooth radial gradient: 1 at the center decaying to 0 at the corner.
pub fn radial_gradient(dims: Dims3) -> Vec<f32> {
    let (cx, cy, cz) = (
        dims.nx as f32 / 2.0,
        dims.ny as f32 / 2.0,
        dims.nz as f32 / 2.0,
    );
    let rmax = (cx * cx + cy * cy + cz * cz).sqrt();
    dims.iter()
        .map(|(i, j, k)| {
            let d = ((i as f32 + 0.5 - cx).powi(2)
                + (j as f32 + 0.5 - cy).powi(2)
                + (k as f32 + 0.5 - cz).powi(2))
            .sqrt();
            (1.0 - d / rmax).clamp(0.0, 1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_is_monotone_row_major() {
        let d = Dims3::new(4, 3, 2);
        let v = ramp(d);
        for w in v.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn constant_field() {
        let v = constant(Dims3::cube(4), 2.5);
        assert!(v.iter().all(|&x| x == 2.5));
        assert_eq!(v.len(), 64);
    }

    #[test]
    fn checkerboard_alternates() {
        let d = Dims3::cube(4);
        let v = checkerboard(d, 2);
        assert_eq!(v[0], 0.0); // (0,0,0)
        assert_eq!(v[2], 1.0); // (2,0,0)
        assert_eq!(v[2 * 4], 1.0); // (0,2,0)
    }

    #[test]
    fn sphere_center_inside_corner_outside() {
        let d = Dims3::cube(16);
        let v = sphere(d, 4.0);
        let center = 8 + 8 * 16 + 8 * 256;
        assert_eq!(v[center], 1.0);
        assert_eq!(v[0], 0.0);
    }

    #[test]
    fn radial_gradient_peaks_at_center() {
        let d = Dims3::cube(17);
        let v = radial_gradient(d);
        let center = 8 + 8 * 17 + 8 * 289;
        assert!(v[center] > 0.9);
        assert!(v[0] < 0.1);
    }
}
