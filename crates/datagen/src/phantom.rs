//! Synthetic MRI-like phantom volume.
//!
//! The paper's bilateral-filter input was a 512³ MRI scan from UC Davis.
//! We substitute a deterministic head-like phantom: nested ellipsoid
//! shells (scalp/skull/brain), low-intensity ventricles, a few bright
//! lesions, and additive magnitude ("Rician-like") noise. Piecewise-smooth
//! regions separated by sharp boundaries are exactly the regime an
//! edge-preserving filter is built for, so the filter's data-dependent
//! (photometric) code path is fully exercised.

use sfc_core::{Dims3, SplitMix64};

/// Tissue intensity levels (arbitrary units in `[0, 1]`).
mod level {
    pub const BACKGROUND: f32 = 0.02;
    pub const SCALP: f32 = 0.55;
    pub const SKULL: f32 = 0.15;
    pub const BRAIN: f32 = 0.45;
    pub const VENTRICLE: f32 = 0.12;
    pub const LESION: f32 = 0.85;
}

/// Parameters of the phantom generator.
#[derive(Debug, Clone, Copy)]
pub struct PhantomParams {
    /// Number of random bright lesions.
    pub lesions: usize,
    /// Noise standard deviation (before magnitude-folding).
    pub noise_sigma: f32,
}

impl Default for PhantomParams {
    fn default() -> Self {
        Self {
            lesions: 6,
            noise_sigma: 0.03,
        }
    }
}

/// Generate the phantom as a row-major `f32` buffer.
pub fn mri_phantom(dims: Dims3, seed: u64, params: PhantomParams) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    // Lesion centers in normalized [-1,1] brain coordinates.
    let lesions: Vec<([f32; 3], f32)> = (0..params.lesions)
        .map(|_| {
            let c = [
                rng.f32_in(-0.5, 0.5),
                rng.f32_in(-0.5, 0.5),
                rng.f32_in(-0.5, 0.5),
            ];
            let r = rng.f32_in(0.04, 0.12);
            (c, r)
        })
        .collect();

    let (nx, ny, nz) = (dims.nx as f32, dims.ny as f32, dims.nz as f32);
    let mut out = Vec::with_capacity(dims.len());
    // Second RNG stream for per-voxel noise keeps structure independent of
    // voxel visit order choices elsewhere.
    let mut noise_rng = SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15);

    for (i, j, k) in dims.iter() {
        // Normalized coordinates in [-1, 1].
        let x = 2.0 * (i as f32 + 0.5) / nx - 1.0;
        let y = 2.0 * (j as f32 + 0.5) / ny - 1.0;
        let z = 2.0 * (k as f32 + 0.5) / nz - 1.0;
        // Head ellipsoid metric (slightly elongated along y).
        let r = (x * x / 0.81 + y * y / 0.9025 + z * z / 0.7225).sqrt();

        let mut v = if r > 1.0 {
            level::BACKGROUND
        } else if r > 0.92 {
            level::SCALP
        } else if r > 0.82 {
            level::SKULL
        } else {
            // Inside the skull: brain parenchyma by default.
            let mut tissue = level::BRAIN;
            // Two ventricles: small ellipsoids either side of the midline.
            for side in [-1.0f32, 1.0] {
                let dx = (x - side * 0.18) / 0.12;
                let dy = y / 0.3;
                let dz = z / 0.15;
                if dx * dx + dy * dy + dz * dz < 1.0 {
                    tissue = level::VENTRICLE;
                }
            }
            for ([cx, cy, cz], lr) in &lesions {
                let d2 = (x - cx).powi(2) + (y - cy).powi(2) + (z - cz).powi(2);
                if d2 < lr * lr {
                    tissue = level::LESION;
                }
            }
            tissue
        };

        if params.noise_sigma > 0.0 {
            // Box-Muller Gaussian, folded to magnitude (Rician-ish for MRI).
            let u1: f32 = noise_rng.f32_unit().max(1e-7);
            let u2: f32 = noise_rng.f32_unit();
            let g = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            v = (v + params.noise_sigma * g).abs();
        }
        out.push(v.clamp(0.0, 1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let d = Dims3::cube(16);
        let a = mri_phantom(d, 5, PhantomParams::default());
        let b = mri_phantom(d, 5, PhantomParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let d = Dims3::cube(16);
        let a = mri_phantom(d, 5, PhantomParams::default());
        let b = mri_phantom(d, 6, PhantomParams::default());
        assert_ne!(a, b);
    }

    #[test]
    fn values_in_unit_interval() {
        let d = Dims3::cube(24);
        let v = mri_phantom(d, 1, PhantomParams::default());
        assert_eq!(v.len(), d.len());
        assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn has_structure_not_constant() {
        let d = Dims3::cube(32);
        let v = mri_phantom(
            d,
            1,
            PhantomParams {
                lesions: 4,
                noise_sigma: 0.0,
            },
        );
        let mean = v.iter().sum::<f32>() / v.len() as f32;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / v.len() as f32;
        assert!(var > 0.01, "phantom must contain contrast, var={var}");
    }

    #[test]
    fn corners_are_background() {
        let d = Dims3::cube(32);
        let v = mri_phantom(
            d,
            1,
            PhantomParams {
                lesions: 0,
                noise_sigma: 0.0,
            },
        );
        assert_eq!(v[0], level::BACKGROUND);
        assert_eq!(*v.last().unwrap(), level::BACKGROUND);
    }

    #[test]
    fn center_is_brain_tissue_without_noise() {
        let d = Dims3::cube(32);
        let v = mri_phantom(
            d,
            1,
            PhantomParams {
                lesions: 0,
                noise_sigma: 0.0,
            },
        );
        // Voxel near the center but off the ventricles.
        let idx = 16 + 16 * 32 + 26 * 32 * 32;
        assert!(v[idx] == level::BRAIN || v[idx] == level::VENTRICLE);
    }

    #[test]
    fn noise_increases_variance() {
        let d = Dims3::cube(16);
        let clean = mri_phantom(
            d,
            9,
            PhantomParams {
                lesions: 0,
                noise_sigma: 0.0,
            },
        );
        let noisy = mri_phantom(
            d,
            9,
            PhantomParams {
                lesions: 0,
                noise_sigma: 0.05,
            },
        );
        let diff: f32 = clean
            .iter()
            .zip(&noisy)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / clean.len() as f32;
        assert!(diff > 0.01, "noise must perturb voxels, mean |diff| = {diff}");
    }
}
