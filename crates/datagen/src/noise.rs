//! Deterministic value noise and fractional Brownian motion (fBm).
//!
//! Used to synthesize the combustion-like test volume (the paper's
//! raycasting input was a combustion simulation field we do not have; a
//! multi-octave noise field exercises the same smooth-plus-structure
//! sampling behaviour — see DESIGN.md §2).

use sfc_core::{SfcError, SfcResult, SplitMix64};

/// Periodic 3D value noise on a power-of-two lattice, sampled with
/// trilinear interpolation and cubic smoothing.
#[derive(Debug, Clone)]
pub struct ValueNoise3 {
    lattice: Vec<f32>,
    n: usize,
    mask: usize,
}

impl ValueNoise3 {
    /// Build a lattice of `n³` uniform random values in `[0, 1)`,
    /// validating the lattice size.
    pub fn try_new(seed: u64, n: usize) -> SfcResult<Self> {
        if !n.is_power_of_two() {
            return Err(SfcError::InvalidParameter {
                name: "lattice size",
                reason: format!("must be a power of two, got {n}"),
            });
        }
        let mut rng = SplitMix64::new(seed);
        let lattice = (0..n * n * n).map(|_| rng.f32_unit()).collect();
        Ok(Self {
            lattice,
            n,
            mask: n - 1,
        })
    }

    /// Build a lattice of `n³` uniform random values in `[0, 1)`.
    ///
    /// # Panics
    /// Panics unless `n` is a power of two; see [`ValueNoise3::try_new`].
    pub fn new(seed: u64, n: usize) -> Self {
        match Self::try_new(seed, n) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    #[inline]
    fn at(&self, x: usize, y: usize, z: usize) -> f32 {
        self.lattice[(x & self.mask) + (y & self.mask) * self.n + (z & self.mask) * self.n * self.n]
    }

    /// Sample at a continuous (wrapping) position; result in `[0, 1)`.
    pub fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        let (xf, yf, zf) = (x.floor(), y.floor(), z.floor());
        let (x0, y0, z0) = (
            xf.rem_euclid(self.n as f32) as usize,
            yf.rem_euclid(self.n as f32) as usize,
            zf.rem_euclid(self.n as f32) as usize,
        );
        // Smoothstep fade for C1 continuity.
        let fade = |t: f32| t * t * (3.0 - 2.0 * t);
        let (tx, ty, tz) = (fade(x - xf), fade(y - yf), fade(z - zf));
        let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
        let (x1, y1, z1) = (x0 + 1, y0 + 1, z0 + 1);
        let c00 = lerp(self.at(x0, y0, z0), self.at(x1, y0, z0), tx);
        let c10 = lerp(self.at(x0, y1, z0), self.at(x1, y1, z0), tx);
        let c01 = lerp(self.at(x0, y0, z1), self.at(x1, y0, z1), tx);
        let c11 = lerp(self.at(x0, y1, z1), self.at(x1, y1, z1), tx);
        let c0 = lerp(c00, c10, ty);
        let c1 = lerp(c01, c11, ty);
        lerp(c0, c1, tz)
    }
}

/// Multi-octave fractional Brownian motion over [`ValueNoise3`].
#[derive(Debug, Clone)]
pub struct Fbm3 {
    base: ValueNoise3,
    octaves: u32,
    lacunarity: f32,
    gain: f32,
}

impl Fbm3 {
    /// Standard turbulence parameters: `lacunarity = 2`, `gain = 0.5`.
    pub fn new(seed: u64, octaves: u32) -> Self {
        Self {
            base: ValueNoise3::new(seed, 32),
            octaves,
            lacunarity: 2.0,
            gain: 0.5,
        }
    }

    /// Sample normalized to approximately `[0, 1]`.
    pub fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        let mut sum = 0.0f32;
        let mut amp = 1.0f32;
        let mut freq = 1.0f32;
        let mut norm = 0.0f32;
        for _ in 0..self.octaves {
            sum += amp * self.base.sample(x * freq, y * freq, z * freq);
            norm += amp;
            amp *= self.gain;
            freq *= self.lacunarity;
        }
        sum / norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = ValueNoise3::new(42, 16);
        let b = ValueNoise3::new(42, 16);
        for p in 0..100 {
            let t = p as f32 * 0.37;
            assert_eq!(a.sample(t, t * 1.3, t * 0.7), b.sample(t, t * 1.3, t * 0.7));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ValueNoise3::new(1, 16);
        let b = ValueNoise3::new(2, 16);
        let same = (0..100).all(|p| {
            let t = p as f32 * 0.61;
            a.sample(t, t, t) == b.sample(t, t, t)
        });
        assert!(!same);
    }

    #[test]
    fn values_in_unit_range() {
        let n = Fbm3::new(7, 5);
        for p in 0..1000 {
            let t = p as f32 * 0.123;
            let v = n.sample(t, t * 0.5, t * 2.0);
            assert!((0.0..=1.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn interpolation_passes_through_lattice_points() {
        let n = ValueNoise3::new(3, 8);
        assert_eq!(n.sample(2.0, 5.0, 7.0), n.at(2, 5, 7));
    }

    #[test]
    fn wraps_periodically() {
        let n = ValueNoise3::new(3, 8);
        assert!((n.sample(1.5, 2.5, 3.5) - n.sample(9.5, 10.5, 11.5)).abs() < 1e-6);
    }

    #[test]
    fn smooth_locally() {
        // Adjacent samples 0.01 apart must differ far less than the total range.
        let n = Fbm3::new(11, 4);
        let a = n.sample(3.0, 4.0, 5.0);
        let b = n.sample(3.01, 4.0, 5.0);
        assert!((a - b).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_lattice_panics() {
        ValueNoise3::new(0, 10);
    }
}
