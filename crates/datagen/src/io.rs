//! Volume and image I/O.
//!
//! * Raw volumes: flat little-endian `f32`, row-major — the format the
//!   paper's datasets ship in, so users with the real MRI/combustion data
//!   can drop them in.
//! * Checksummed volumes ([`save_volume`]/[`load_volume`]): a small
//!   versioned container around the same payload that detects truncation
//!   and bit-flips before corrupt data reaches a kernel.
//! * Images: binary PGM (grayscale) and PPM (RGB) for filter slices and
//!   rendered frames.
//!
//! All loaders validate against *untrusted* input: sizes are checked with
//! overflow-safe arithmetic and failures come back as typed
//! [`SfcError`] values, never panics.
//!
//! All writers are **crash-consistent**: bytes are staged to a sibling
//! temp file, fsynced, and atomically renamed into place
//! ([`sfc_harness::write_atomic`]), so a `kill -9` mid-write leaves either
//! the previous file or the new one — never a torn hybrid that a later
//! run would have to diagnose.

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use sfc_core::{Dims3, SfcError, SfcResult};
use sfc_harness::write_atomic;

/// Magic bytes opening a checksummed volume file.
pub const VOLUME_MAGIC: [u8; 4] = *b"SFCV";
/// Current version of the checksummed volume container.
pub const VOLUME_VERSION: u32 = 1;

/// Write a row-major `f32` volume as raw little-endian bytes
/// (atomically: temp file + fsync + rename).
pub fn save_raw_f32(path: &Path, values: &[f32]) -> SfcResult<()> {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for &v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    write_atomic(path, &bytes).map_err(|e| SfcError::io(path.display().to_string(), e))
}

/// Load a raw little-endian `f32` volume; the file length must be exactly
/// `dims.len() * 4` bytes (checked multiply — huge dims error instead of
/// overflowing) and any trailing remainder of 1..=3 bytes is an error, not
/// a silent drop.
pub fn load_raw_f32(path: &Path, dims: Dims3) -> SfcResult<Vec<f32>> {
    let ctx = || path.display().to_string();
    let mut bytes = Vec::new();
    BufReader::new(File::open(path).map_err(|e| SfcError::io(ctx(), e))?)
        .read_to_end(&mut bytes)
        .map_err(|e| SfcError::io(ctx(), e))?;
    let expected = dims.checked_byte_len(4)?;
    if bytes.len() != expected {
        let detail = if bytes.len() % 4 != 0 {
            format!(
                "file has {} bytes ({} trailing bytes are not a whole f32), dims {dims:?} need {expected}",
                bytes.len(),
                bytes.len() % 4
            )
        } else {
            format!(
                "file has {} bytes, dims {dims:?} need {expected}",
                bytes.len()
            )
        };
        return Err(SfcError::corrupt(ctx(), detail));
    }
    Ok(f32s_from_le_bytes(&bytes))
}

fn f32s_from_le_bytes(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// FNV-1a 64-bit checksum — not cryptographic, but reliably catches the
/// single-bit flips and truncations storage faults produce. (Shared with
/// the harness's durable journal; re-exported from `sfc_core` so both
/// layers hash identically.)
pub use sfc_core::fnv1a64;

/// Save a volume in the checksummed `SFCV` container:
///
/// ```text
/// magic "SFCV" | version u32 | nx u64 | ny u64 | nz u64
/// | payload checksum (FNV-1a 64) | payload (len*4 LE f32 bytes)
/// ```
///
/// All integers little-endian. [`load_volume`] verifies every field; the
/// write is atomic (temp file + fsync + rename).
pub fn save_volume(path: &Path, dims: Dims3, values: &[f32]) -> SfcResult<()> {
    if values.len() != dims.len() {
        return Err(SfcError::ShapeMismatch {
            what: "save_volume",
            expected: format!("{} values for dims {dims:?}", dims.len()),
            actual: format!("{} values", values.len()),
        });
    }
    let payload_len = dims.checked_byte_len(4)?;
    let mut bytes = Vec::with_capacity(40 + payload_len);
    bytes.extend_from_slice(&VOLUME_MAGIC);
    bytes.extend_from_slice(&VOLUME_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(dims.nx as u64).to_le_bytes());
    bytes.extend_from_slice(&(dims.ny as u64).to_le_bytes());
    bytes.extend_from_slice(&(dims.nz as u64).to_le_bytes());
    let payload_start = bytes.len() + 8;
    bytes.extend_from_slice(&[0u8; 8]); // checksum placeholder
    for &v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let sum = fnv1a64(&bytes[payload_start..]);
    bytes[payload_start - 8..payload_start].copy_from_slice(&sum.to_le_bytes());
    write_atomic(path, &bytes).map_err(|e| SfcError::io(path.display().to_string(), e))
}

/// Load a checksummed `SFCV` volume, returning its dims and row-major
/// payload. Detects wrong magic, unsupported version, dims overflow,
/// truncation, and payload bit-flips — each as a typed [`SfcError`].
pub fn load_volume(path: &Path) -> SfcResult<(Dims3, Vec<f32>)> {
    let ctx = || path.display().to_string();
    let mut bytes = Vec::new();
    BufReader::new(File::open(path).map_err(|e| SfcError::io(ctx(), e))?)
        .read_to_end(&mut bytes)
        .map_err(|e| SfcError::io(ctx(), e))?;

    const HEADER: usize = 4 + 4 + 8 + 8 + 8 + 8;
    if bytes.len() < HEADER {
        return Err(SfcError::corrupt(
            ctx(),
            format!("truncated header: {} bytes < {HEADER}", bytes.len()),
        ));
    }
    if bytes[0..4] != VOLUME_MAGIC {
        return Err(SfcError::corrupt(
            ctx(),
            format!("bad magic {:02X?}, want {VOLUME_MAGIC:02X?}", &bytes[0..4]),
        ));
    }
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
    let version = u32_at(4);
    if version != VOLUME_VERSION {
        return Err(SfcError::corrupt(
            ctx(),
            format!("unsupported container version {version}, want {VOLUME_VERSION}"),
        ));
    }
    let (nx, ny, nz) = (u64_at(8), u64_at(16), u64_at(24));
    let too_big = |v: u64| usize::try_from(v).is_err();
    if too_big(nx) || too_big(ny) || too_big(nz) {
        return Err(SfcError::SizeOverflow {
            what: "SFCV header extent exceeds usize",
        });
    }
    let dims = Dims3::try_new(nx as usize, ny as usize, nz as usize)?;
    let expected = dims.checked_byte_len(4)?;
    let payload = &bytes[HEADER..];
    if payload.len() != expected {
        return Err(SfcError::corrupt(
            ctx(),
            format!(
                "payload truncated: {} bytes, dims {dims:?} need {expected}",
                payload.len()
            ),
        ));
    }
    let want = u64_at(32);
    let got = fnv1a64(payload);
    if want != got {
        return Err(SfcError::corrupt(
            ctx(),
            format!("checksum mismatch: header {want:#018X}, payload {got:#018X}"),
        ));
    }
    Ok((dims, f32s_from_le_bytes(payload)))
}

/// Write an 8-bit binary PGM (P5) grayscale image.
pub fn write_pgm(path: &Path, width: usize, height: usize, pixels: &[u8]) -> SfcResult<()> {
    let expected = width
        .checked_mul(height)
        .ok_or(SfcError::SizeOverflow { what: "PGM width * height" })?;
    if pixels.len() != expected {
        return Err(SfcError::ShapeMismatch {
            what: "write_pgm",
            expected: format!("{width}x{height} = {expected} pixels"),
            actual: format!("{} pixels", pixels.len()),
        });
    }
    let mut bytes = format!("P5\n{width} {height}\n255\n").into_bytes();
    bytes.extend_from_slice(pixels);
    write_atomic(path, &bytes).map_err(|e| SfcError::io(path.display().to_string(), e))
}

/// Write a 24-bit binary PPM (P6) RGB image from interleaved RGB bytes.
pub fn write_ppm(path: &Path, width: usize, height: usize, rgb: &[u8]) -> SfcResult<()> {
    let expected = width
        .checked_mul(height)
        .and_then(|p| p.checked_mul(3))
        .ok_or(SfcError::SizeOverflow { what: "PPM width * height * 3" })?;
    if rgb.len() != expected {
        return Err(SfcError::ShapeMismatch {
            what: "write_ppm",
            expected: format!("{width}x{height}x3 = {expected} bytes"),
            actual: format!("{} bytes", rgb.len()),
        });
    }
    let mut bytes = format!("P6\n{width} {height}\n255\n").into_bytes();
    bytes.extend_from_slice(rgb);
    write_atomic(path, &bytes).map_err(|e| SfcError::io(path.display().to_string(), e))
}

/// Normalize a float slice to `u8` over its own min/max (constant input
/// maps to mid-gray). NaNs are ignored for the range and map to 0.
pub fn normalize_to_u8(values: &[f32]) -> Vec<u8> {
    let min = values.iter().cloned().filter(|v| !v.is_nan()).fold(f32::INFINITY, f32::min);
    let max = values
        .iter()
        .cloned()
        .filter(|v| !v.is_nan())
        .fold(f32::NEG_INFINITY, f32::max);
    // Constant or empty input (or NaN extremes) maps to mid-gray.
    if max.partial_cmp(&min) != Some(std::cmp::Ordering::Greater) {
        return vec![128; values.len()];
    }
    values
        .iter()
        .map(|&v| {
            if v.is_nan() {
                0
            } else {
                (((v - min) / (max - min)) * 255.0).round().clamp(0.0, 255.0) as u8
            }
        })
        .collect()
}

/// Extract the z = `slice` plane of a row-major volume (row-major 2D out),
/// validating the slice index and buffer shape.
pub fn try_slice_z(values: &[f32], dims: Dims3, slice: usize) -> SfcResult<Vec<f32>> {
    if slice >= dims.nz {
        return Err(SfcError::InvalidParameter {
            name: "slice",
            reason: format!("z index {slice} out of range for dims {dims:?}"),
        });
    }
    if values.len() != dims.len() {
        return Err(SfcError::ShapeMismatch {
            what: "slice_z",
            expected: format!("{} values for dims {dims:?}", dims.len()),
            actual: format!("{} values", values.len()),
        });
    }
    let plane = dims.nx * dims.ny;
    Ok(values[slice * plane..(slice + 1) * plane].to_vec())
}

/// Extract the z = `slice` plane of a row-major volume.
///
/// # Panics
/// Panics on an out-of-range slice or mis-sized buffer; use
/// [`try_slice_z`] for untrusted inputs.
pub fn slice_z(values: &[f32], dims: Dims3, slice: usize) -> Vec<f32> {
    match try_slice_z(values, dims, slice) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sfc_datagen_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn raw_roundtrip() {
        let dims = Dims3::new(3, 4, 5);
        let values: Vec<f32> = (0..dims.len()).map(|v| v as f32 * 0.5).collect();
        let path = tmp("roundtrip.raw");
        save_raw_f32(&path, &values).unwrap();
        let loaded = load_raw_f32(&path, dims).unwrap();
        assert_eq!(values, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn raw_size_mismatch_errors() {
        let path = tmp("short.raw");
        save_raw_f32(&path, &[1.0, 2.0]).unwrap();
        let err = load_raw_f32(&path, Dims3::cube(4)).unwrap_err();
        assert!(matches!(err, SfcError::Corrupt { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn raw_trailing_remainder_is_an_error_not_a_silent_drop() {
        let path = tmp("trailing.raw");
        let dims = Dims3::new(2, 1, 1);
        save_raw_f32(&path, &[1.0, 2.0]).unwrap();
        // Append 3 stray bytes: the old loader silently dropped them.
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        }
        let err = load_raw_f32(&path, dims).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn raw_huge_dims_error_instead_of_overflowing() {
        let path = tmp("huge.raw");
        save_raw_f32(&path, &[0.0; 4]).unwrap();
        // Element count fits usize, byte length does not.
        let dims = Dims3::new(1 << 40, 1 << 20, 4);
        let err = load_raw_f32(&path, dims).unwrap_err();
        assert!(matches!(err, SfcError::SizeOverflow { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn volume_container_roundtrip() {
        let dims = Dims3::new(5, 4, 3);
        let values: Vec<f32> = (0..dims.len()).map(|v| (v as f32).sin()).collect();
        let path = tmp("container.sfcv");
        save_volume(&path, dims, &values).unwrap();
        let (d2, v2) = load_volume(&path).unwrap();
        assert_eq!(d2, dims);
        assert_eq!(v2, values);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn volume_container_detects_bit_flip() {
        let dims = Dims3::new(4, 4, 2);
        let values: Vec<f32> = (0..dims.len()).map(|v| v as f32).collect();
        let path = tmp("flip.sfcv");
        save_volume(&path, dims, &values).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10; // flip one payload bit
        std::fs::write(&path, &bytes).unwrap();
        let err = load_volume(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn volume_container_detects_truncation() {
        let dims = Dims3::new(4, 4, 2);
        let values: Vec<f32> = (0..dims.len()).map(|v| v as f32).collect();
        let path = tmp("trunc.sfcv");
        save_volume(&path, dims, &values).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let err = load_volume(&path).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn volume_container_rejects_bad_magic_and_version() {
        let dims = Dims3::new(2, 2, 2);
        let values = vec![0.0f32; dims.len()];
        let path = tmp("magic.sfcv");
        save_volume(&path, dims, &values).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_volume(&path).unwrap_err().to_string().contains("magic"));
        // Restore magic, break version.
        bytes[0] = b'S';
        bytes[4] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_volume(&path).unwrap_err().to_string().contains("version"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pgm_header_and_payload() {
        let path = tmp("img.pgm");
        write_pgm(&path, 2, 2, &[0, 64, 128, 255]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(&bytes[bytes.len() - 4..], &[0, 64, 128, 255]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pgm_shape_mismatch_is_typed_error() {
        let err = write_pgm(&tmp("bad.pgm"), 3, 3, &[0; 4]).unwrap_err();
        assert!(matches!(err, SfcError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn ppm_header() {
        let path = tmp("img.ppm");
        write_ppm(&path, 1, 2, &[255, 0, 0, 0, 255, 0]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n1 2\n255\n"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn normalize_spans_full_range() {
        let v = normalize_to_u8(&[1.0, 2.0, 3.0]);
        assert_eq!(v, vec![0, 128, 255]);
        assert_eq!(normalize_to_u8(&[5.0, 5.0]), vec![128, 128]);
    }

    #[test]
    fn normalize_survives_nan() {
        let v = normalize_to_u8(&[f32::NAN, 1.0, 3.0]);
        assert_eq!(v, vec![0, 0, 255]);
    }

    #[test]
    fn slice_extracts_plane() {
        let dims = Dims3::new(2, 2, 3);
        let values: Vec<f32> = (0..12).map(|v| v as f32).collect();
        assert_eq!(slice_z(&values, dims, 1), vec![4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn slice_out_of_range_is_typed_error() {
        let dims = Dims3::new(2, 2, 3);
        let values = vec![0.0f32; 12];
        assert!(try_slice_z(&values, dims, 3).is_err());
        assert!(try_slice_z(&values[..5], dims, 0).is_err());
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
    }

    #[test]
    fn writers_are_atomic_and_tolerate_stale_temps() {
        // A crashed writer leaves a stale temp sibling; the next write
        // must overwrite it, commit atomically, and leave no temp behind.
        let dims = Dims3::new(3, 2, 2);
        let values: Vec<f32> = (0..dims.len()).map(|v| v as f32).collect();
        for (name, write) in [
            ("atomic.sfcv", Box::new(|p: &Path| save_volume(p, dims, &values))
                as Box<dyn Fn(&Path) -> SfcResult<()>>),
            ("atomic.raw", Box::new(|p: &Path| save_raw_f32(p, &values))),
            ("atomic.pgm", Box::new(|p: &Path| write_pgm(p, 3, 4, &[7u8; 12]))),
            ("atomic.ppm", Box::new(|p: &Path| write_ppm(p, 2, 2, &[9u8; 12]))),
        ] {
            let path = tmp(name);
            let stale = sfc_harness::durable::tmp_sibling(&path);
            std::fs::write(&stale, b"left by a killed process").unwrap();
            write(&path).unwrap();
            assert!(!stale.exists(), "{name}: temp must be renamed away");
            assert!(path.exists());
            std::fs::remove_file(&path).ok();
        }
        // The committed SFCV still loads cleanly.
        let path = tmp("atomic_load.sfcv");
        save_volume(&path, dims, &values).unwrap();
        let (d2, v2) = load_volume(&path).unwrap();
        assert_eq!((d2, v2), (dims, values.clone()));
        std::fs::remove_file(&path).ok();
    }
}
