//! Volume and image I/O.
//!
//! * Raw volumes: flat little-endian `f32`, row-major — the format the
//!   paper's datasets ship in, so users with the real MRI/combustion data
//!   can drop them in.
//! * Images: binary PGM (grayscale) and PPM (RGB) for filter slices and
//!   rendered frames.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};
use sfc_core::Dims3;

/// Write a row-major `f32` volume as raw little-endian bytes.
pub fn save_raw_f32(path: &Path, values: &[f32]) -> io::Result<()> {
    let mut buf = BytesMut::with_capacity(values.len() * 4);
    for &v in values {
        buf.put_f32_le(v);
    }
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(&buf)?;
    out.flush()
}

/// Load a raw little-endian `f32` volume; the file length must be exactly
/// `dims.len() * 4` bytes.
pub fn load_raw_f32(path: &Path, dims: Dims3) -> io::Result<Vec<f32>> {
    let mut bytes = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
    let expected = dims.len() * 4;
    if bytes.len() != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "volume size mismatch: file has {} bytes, dims {dims:?} need {expected}",
                bytes.len()
            ),
        ));
    }
    let mut buf = &bytes[..];
    let mut out = Vec::with_capacity(dims.len());
    while buf.remaining() >= 4 {
        out.push(buf.get_f32_le());
    }
    Ok(out)
}

/// Write an 8-bit binary PGM (P5) grayscale image.
pub fn write_pgm(path: &Path, width: usize, height: usize, pixels: &[u8]) -> io::Result<()> {
    assert_eq!(pixels.len(), width * height);
    let mut out = BufWriter::new(File::create(path)?);
    write!(out, "P5\n{width} {height}\n255\n")?;
    out.write_all(pixels)?;
    out.flush()
}

/// Write a 24-bit binary PPM (P6) RGB image from interleaved RGB bytes.
pub fn write_ppm(path: &Path, width: usize, height: usize, rgb: &[u8]) -> io::Result<()> {
    assert_eq!(rgb.len(), width * height * 3);
    let mut out = BufWriter::new(File::create(path)?);
    write!(out, "P6\n{width} {height}\n255\n")?;
    out.write_all(rgb)?;
    out.flush()
}

/// Normalize a float slice to `u8` over its own min/max (constant input
/// maps to mid-gray).
pub fn normalize_to_u8(values: &[f32]) -> Vec<u8> {
    let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    // Constant or empty input (or NaN extremes) maps to mid-gray.
    if max.partial_cmp(&min) != Some(std::cmp::Ordering::Greater) {
        return vec![128; values.len()];
    }
    values
        .iter()
        .map(|&v| (((v - min) / (max - min)) * 255.0).round().clamp(0.0, 255.0) as u8)
        .collect()
}

/// Extract the z = `slice` plane of a row-major volume (row-major 2D out).
pub fn slice_z(values: &[f32], dims: Dims3, slice: usize) -> Vec<f32> {
    assert!(slice < dims.nz);
    assert_eq!(values.len(), dims.len());
    let plane = dims.nx * dims.ny;
    values[slice * plane..(slice + 1) * plane].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sfc_datagen_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn raw_roundtrip() {
        let dims = Dims3::new(3, 4, 5);
        let values: Vec<f32> = (0..dims.len()).map(|v| v as f32 * 0.5).collect();
        let path = tmp("roundtrip.raw");
        save_raw_f32(&path, &values).unwrap();
        let loaded = load_raw_f32(&path, dims).unwrap();
        assert_eq!(values, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn raw_size_mismatch_errors() {
        let path = tmp("short.raw");
        save_raw_f32(&path, &[1.0, 2.0]).unwrap();
        let err = load_raw_f32(&path, Dims3::cube(4)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pgm_header_and_payload() {
        let path = tmp("img.pgm");
        write_pgm(&path, 2, 2, &[0, 64, 128, 255]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(&bytes[bytes.len() - 4..], &[0, 64, 128, 255]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ppm_header() {
        let path = tmp("img.ppm");
        write_ppm(&path, 1, 2, &[255, 0, 0, 0, 255, 0]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n1 2\n255\n"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn normalize_spans_full_range() {
        let v = normalize_to_u8(&[1.0, 2.0, 3.0]);
        assert_eq!(v, vec![0, 128, 255]);
        assert_eq!(normalize_to_u8(&[5.0, 5.0]), vec![128, 128]);
    }

    #[test]
    fn slice_extracts_plane() {
        let dims = Dims3::new(2, 2, 3);
        let values: Vec<f32> = (0..12).map(|v| v as f32).collect();
        assert_eq!(slice_z(&values, dims, 1), vec![4.0, 5.0, 6.0, 7.0]);
    }
}
