//! Synthetic combustion-like scalar field.
//!
//! The paper's raycasting input was a 512³ field from a combustion
//! simulation. We substitute a turbulence-style synthetic: multi-octave
//! fBm modulated by a few hot "flame sheets" (narrow high-value bands
//! around iso-surfaces of a second noise field), which gives a histogram
//! with both broad smooth structure and thin features — the regime a
//! transfer function is tuned for.

use sfc_core::Dims3;

use crate::noise::Fbm3;

/// Parameters of the combustion-field generator.
#[derive(Debug, Clone, Copy)]
pub struct CombustionParams {
    /// Base spatial frequency across the volume.
    pub frequency: f32,
    /// fBm octaves.
    pub octaves: u32,
    /// Weight of the sheet component vs. the fBm background.
    pub sheet_weight: f32,
}

impl Default for CombustionParams {
    fn default() -> Self {
        Self {
            frequency: 4.0,
            octaves: 5,
            sheet_weight: 0.45,
        }
    }
}

/// Generate the field as a row-major `f32` buffer in `[0, 1]`.
pub fn combustion_field(dims: Dims3, seed: u64, params: CombustionParams) -> Vec<f32> {
    let turb = Fbm3::new(seed, params.octaves);
    let sheets = Fbm3::new(seed ^ 0xDEAD_BEEF_CAFE_F00D, 3);
    let (nx, ny, nz) = (dims.nx as f32, dims.ny as f32, dims.nz as f32);
    let mut out = Vec::with_capacity(dims.len());
    for (i, j, k) in dims.iter() {
        let x = params.frequency * (i as f32 + 0.5) / nx;
        let y = params.frequency * (j as f32 + 0.5) / ny;
        let z = params.frequency * (k as f32 + 0.5) / nz;
        let t = turb.sample(x, y, z);
        // Hot sheets: Gaussian band around the 0.5 iso-level of a second,
        // lower-frequency field.
        let s = sheets.sample(x * 0.5, y * 0.5, z * 0.5);
        let sheet = (-((s - 0.5) / 0.04).powi(2)).exp();
        let v = (1.0 - params.sheet_weight) * t + params.sheet_weight * sheet;
        out.push(v.clamp(0.0, 1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let d = Dims3::cube(16);
        assert_eq!(
            combustion_field(d, 3, CombustionParams::default()),
            combustion_field(d, 3, CombustionParams::default())
        );
    }

    #[test]
    fn unit_range_and_length() {
        let d = Dims3::new(8, 16, 12);
        let v = combustion_field(d, 1, CombustionParams::default());
        assert_eq!(v.len(), d.len());
        assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn has_dynamic_range() {
        let d = Dims3::cube(32);
        let v = combustion_field(d, 7, CombustionParams::default());
        let min = v.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 0.3, "needs contrast for a transfer function");
    }

    #[test]
    fn spatially_smooth() {
        let d = Dims3::cube(32);
        let v = combustion_field(d, 7, CombustionParams::default());
        // Mean |gradient| along x must be small relative to the range.
        let mut acc = 0.0f32;
        let mut n = 0u32;
        for k in 0..32 {
            for j in 0..32 {
                for i in 0..31 {
                    let a = v[i + j * 32 + k * 1024];
                    let b = v[i + 1 + j * 32 + k * 1024];
                    acc += (a - b).abs();
                    n += 1;
                }
            }
        }
        assert!(acc / (n as f32) < 0.1);
    }
}
