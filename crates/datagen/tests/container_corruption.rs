//! Exhaustive SFCV container-corruption sweep.
//!
//! The journal torn-tail sweep (harness::durable) proved a crash can land
//! after any byte of an append and recovery still holds; this suite makes
//! the same exhaustive promise for the SFCV volume container: *every*
//! single-bit flip in the 40-byte header and *every* truncation point of
//! the file must surface as a typed [`sfc_core::SfcError`] — never a
//! panic, never silently-accepted garbage.

use sfc_core::{Dims3, SfcError};
use sfc_datagen::{load_volume, save_volume};
use std::path::PathBuf;

/// magic(4) + version(4) + nx(8) + ny(8) + nz(8) + checksum(8)
const HEADER: usize = 40;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfc_sfcv_sweep_{}_{tag}", std::process::id()))
}

fn sample_file(tag: &str) -> (PathBuf, Vec<u8>, Vec<f32>) {
    let dims = Dims3::new(5, 4, 3);
    let values: Vec<f32> = (0..dims.len()).map(|i| i as f32 * 0.25 - 7.0).collect();
    let path = tmp(tag);
    save_volume(&path, dims, &values).expect("save");
    let bytes = std::fs::read(&path).expect("read back");
    assert_eq!(bytes.len(), HEADER + values.len() * 4);
    (path, bytes, values)
}

fn assert_typed(err: SfcError, what: &str) {
    // The load must fail through the typed taxonomy, not a panic; any of
    // these variants legitimately describes header damage depending on
    // which field the flip landed in.
    assert!(
        matches!(
            err,
            SfcError::Corrupt { .. }
                | SfcError::InvalidDims { .. }
                | SfcError::SizeOverflow { .. }
                | SfcError::ShapeMismatch { .. }
        ),
        "{what}: unexpected error variant {err:?}"
    );
}

#[test]
fn every_header_bit_flip_is_a_typed_error() {
    let (path, bytes, _) = sample_file("hdrflip");
    for byte in 0..HEADER {
        for bit in 0..8 {
            let mut b = bytes.clone();
            b[byte] ^= 1 << bit;
            std::fs::write(&path, &b).expect("write corrupted copy");
            match load_volume(&path) {
                Err(e) => assert_typed(e, &format!("header byte {byte} bit {bit}")),
                Ok(_) => panic!("header byte {byte} bit {bit}: corruption accepted"),
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_truncation_offset_is_a_typed_error() {
    let (path, bytes, _) = sample_file("trunc");
    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).expect("write truncated copy");
        match load_volume(&path) {
            Err(e) => assert_typed(e, &format!("truncated at {cut}")),
            Ok(_) => panic!("truncated at {cut}: accepted"),
        }
    }
    // And the untouched file still loads — the sweep harness itself is
    // not the thing failing.
    std::fs::write(&path, &bytes).expect("restore");
    load_volume(&path).expect("intact file loads");
    std::fs::remove_file(&path).ok();
}

#[test]
fn payload_bit_flips_are_checksum_errors() {
    // Not part of the satellite contract (the header is), but pins the
    // complementary property: payload rot is caught by the FNV-1a 64.
    let (path, bytes, values) = sample_file("payload");
    for &byte in &[HEADER, HEADER + 7, HEADER + values.len() * 4 - 1] {
        let mut b = bytes.clone();
        b[byte] ^= 0x10;
        std::fs::write(&path, &b).expect("write corrupted copy");
        let err = load_volume(&path).expect_err("payload flip accepted");
        assert!(
            matches!(err, SfcError::Corrupt { .. }),
            "payload byte {byte}: {err:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}
