//! # sfc-store — crash-safe out-of-core brick store
//!
//! Persists a volume as checksummed, space-filling-curve-ordered bricks
//! on disk so the workspace's kernels can process volumes larger than
//! memory, and keeps that promise under the failure model the rest of
//! the repo already defends against: `kill -9` at any instruction,
//! transient and persistent IO errors, torn writes, and silent bit rot.
//!
//! * [`manifest`] — the versioned, self-checksummed manifest published
//!   atomically at the end of an import;
//! * [`store`] — the [`BrickStore`]: journaled import, LRU-paged
//!   [`Volume3`](sfc_core::Volume3) reads with bounded retry,
//!   `scrub()` verification, read-repair from the journal copy, and
//!   NaN-poison graceful degradation for unrecoverable bricks.
//!
//! See DESIGN.md §10 for the on-disk format and failure-model contract.

#![warn(missing_docs)]

pub mod manifest;
pub mod store;

pub use manifest::{Manifest, SlotEntry};
pub use store::{
    BrickStore, ScrubReport, StoreOptions, StoreStats, DATA_FILE, JOURNAL_FILE, MANIFEST_FILE,
};

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{Dims3, Grid3, LayoutKind, Volume3, ZOrder3};
    use sfc_datagen::patterns;
    use sfc_harness::faults::{flip_bit, FaultKind, IoFaultPlan, IoFaultRates};
    use std::path::PathBuf;
    use std::time::Duration;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sfc_store_{}_{tag}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn test_grid(dims: Dims3) -> Grid3<f32, ZOrder3> {
        Grid3::from_row_major(dims, &patterns::ramp(dims))
    }

    fn fast_opts() -> StoreOptions {
        StoreOptions {
            backoff: Duration::from_millis(0),
            ..StoreOptions::default()
        }
    }

    #[test]
    fn import_then_read_back_bitwise() {
        let dims = Dims3::new(13, 9, 7);
        let grid = test_grid(dims);
        let dir = tmp_dir("roundtrip");
        for kind in LayoutKind::ALL {
            let store = BrickStore::import(&dir, &grid, 4, kind, fast_opts()).unwrap();
            for (i, j, k) in dims.iter() {
                assert_eq!(
                    store.get(i, j, k).to_bits(),
                    grid.get(i, j, k).to_bits(),
                    "({i},{j},{k}) under {kind:?}"
                );
            }
            assert!(store.defective_bricks().is_empty());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_budget_still_reads_whole_volume() {
        let dims = Dims3::cube(16);
        let grid = test_grid(dims);
        let dir = tmp_dir("budget");
        // Budget of exactly one brick: every brick-crossing read evicts.
        let opts = fast_opts().with_budget(4 * 4 * 4 * 4);
        let store = BrickStore::import(&dir, &grid, 4, LayoutKind::ZOrder, opts).unwrap();
        let mut diffs = 0;
        for (i, j, k) in dims.iter() {
            if store.get(i, j, k).to_bits() != grid.get(i, j, k).to_bits() {
                diffs += 1;
            }
        }
        assert_eq!(diffs, 0);
        let stats = store.stats();
        assert!(stats.evictions > 0, "one-brick budget must evict: {stats:?}");
        assert!(
            store.resident_bytes() <= 4 * 4 * 4 * 4,
            "residency above budget: {}",
            store.resident_bytes()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gather_axis_run_matches_get() {
        let dims = Dims3::new(12, 10, 9);
        let grid = test_grid(dims);
        let dir = tmp_dir("gather");
        let store =
            BrickStore::import(&dir, &grid, 4, LayoutKind::Hilbert, fast_opts()).unwrap();
        let mut run = vec![0.0f32; dims.nx];
        for axis in [sfc_core::Axis::X, sfc_core::Axis::Y, sfc_core::Axis::Z] {
            let n = match axis {
                sfc_core::Axis::X => dims.nx,
                sfc_core::Axis::Y => dims.ny,
                sfc_core::Axis::Z => dims.nz,
            };
            run.resize(n, 0.0);
            store.gather_axis_run(0, 0, 0, axis, &mut run);
            for (t, &v) in run.iter().enumerate() {
                let (i, j, k) = match axis {
                    sfc_core::Axis::X => (t, 0, 0),
                    sfc_core::Axis::Y => (0, t, 0),
                    sfc_core::Axis::Z => (0, 0, t),
                };
                assert_eq!(v.to_bits(), grid.get(i, j, k).to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn on_disk_bit_rot_is_detected_and_repaired_from_journal() {
        let dims = Dims3::cube(12);
        let grid = test_grid(dims);
        let dir = tmp_dir("bitrot");
        let store = BrickStore::import(&dir, &grid, 4, LayoutKind::ZOrder, fast_opts()).unwrap();
        drop(store);
        // Rot a byte in the middle of the data file.
        flip_bit(&dir.join(DATA_FILE), 1000, 3).unwrap();
        let store = BrickStore::open(&dir, fast_opts()).unwrap();
        let report = store.scrub();
        assert_eq!(report.scanned, 27);
        assert_eq!(report.repaired, 1, "exactly the rotted brick: {report:?}");
        assert!(report.is_healthy());
        // After repair the disk is clean again.
        let report2 = store.scrub();
        assert_eq!(report2.clean, 27, "{report2:?}");
        // And reads are bitwise intact.
        for (i, j, k) in dims.iter() {
            assert_eq!(store.get(i, j, k).to_bits(), grid.get(i, j, k).to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rot_without_journal_copy_degrades_to_nan_poison() {
        let dims = Dims3::cube(8);
        let grid = test_grid(dims);
        let dir = tmp_dir("poison");
        let store = BrickStore::import(&dir, &grid, 4, LayoutKind::ZOrder, fast_opts()).unwrap();
        drop(store);
        std::fs::remove_file(dir.join(JOURNAL_FILE)).unwrap();
        flip_bit(&dir.join(DATA_FILE), 10, 1).unwrap();
        let store = BrickStore::open(&dir, fast_opts()).unwrap();
        let report = store.scrub();
        assert_eq!(report.unrecoverable.len(), 1, "{report:?}");
        let bad = report.unrecoverable[0] as usize;
        let (ox, oy, oz) = store.geom().brick_origin(bad);
        assert!(store.get(ox, oy, oz).is_nan(), "poisoned brick reads NaN");
        // Other bricks still read clean.
        let good = (0..store.geom().brick_count()).find(|&id| id != bad).unwrap();
        let (gx, gy, gz) = store.geom().brick_origin(good);
        assert_eq!(store.get(gx, gy, gz).to_bits(), grid.get(gx, gy, gz).to_bits());
        assert_eq!(store.defective_bricks(), vec![bad as u64]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_read_faults_are_retried_to_success() {
        let dims = Dims3::cube(8);
        let grid = test_grid(dims);
        let dir = tmp_dir("retry");
        BrickStore::import(&dir, &grid, 4, LayoutKind::ZOrder, fast_opts()).unwrap();
        // Random transient faults on the read path: IO errors and
        // in-transit bit flips both retry clean because the disk is fine.
        let rates = IoFaultRates {
            io_error: 0.15,
            bit_flip: 0.15,
            ..IoFaultRates::default()
        };
        for seed in 0..4u64 {
            let opts = fast_opts().with_faults(IoFaultPlan::random(seed, rates));
            let store = BrickStore::open(&dir, opts).unwrap();
            for (i, j, k) in dims.iter() {
                assert_eq!(
                    store.get(i, j, k).to_bits(),
                    grid.get(i, j, k).to_bits(),
                    "seed {seed} ({i},{j},{k})"
                );
            }
            assert!(store.defective_bricks().is_empty(), "seed {seed}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_without_manifest_is_typed_and_recover_finishes_the_import() {
        let dims = Dims3::cube(8);
        let grid = test_grid(dims);
        let dir = tmp_dir("recover");
        BrickStore::import(&dir, &grid, 4, LayoutKind::Tiled, fast_opts()).unwrap();
        // Simulate a crash after the journal was fully written but before
        // the manifest was published.
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        std::fs::remove_file(dir.join(DATA_FILE)).unwrap();
        let err = BrickStore::open(&dir, fast_opts()).unwrap_err();
        assert!(matches!(err, sfc_core::SfcError::Corrupt { .. }), "{err:?}");
        let store = BrickStore::recover(&dir, fast_opts()).unwrap();
        for (i, j, k) in dims.iter() {
            assert_eq!(store.get(i, j, k).to_bits(), grid.get(i, j, k).to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_reports_incomplete_imports() {
        let dims = Dims3::cube(8);
        let grid = test_grid(dims);
        let dir = tmp_dir("incomplete");
        BrickStore::import(&dir, &grid, 4, LayoutKind::ZOrder, fast_opts()).unwrap();
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        std::fs::remove_file(dir.join(DATA_FILE)).unwrap();
        // Chop the journal roughly in half: some bricks are gone.
        let jpath = dir.join(JOURNAL_FILE);
        let len = std::fs::metadata(&jpath).unwrap().len();
        sfc_harness::faults::truncate_file(&jpath, len / 2).unwrap();
        let err = BrickStore::recover(&dir, fast_opts()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("incomplete"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn import_under_injected_faults_fails_without_publishing_a_manifest() {
        let dims = Dims3::cube(8);
        let grid = test_grid(dims);
        for op in [0u64, 1, 5, 9] {
            let dir = tmp_dir(&format!("importfault{op}"));
            let opts = fast_opts()
                .with_faults(IoFaultPlan::none().with_op(op, FaultKind::IoError));
            let res = BrickStore::import(&dir, &grid, 4, LayoutKind::ZOrder, opts);
            if res.is_err() {
                assert!(
                    !dir.join(MANIFEST_FILE).exists(),
                    "op {op}: failed import must not publish a manifest"
                );
                // The journal + recover path can finish the job when the
                // journal happened to complete; otherwise it reports
                // incompleteness. Either way: typed, no panic.
                match BrickStore::recover(&dir, fast_opts()) {
                    Ok(store) => {
                        for (i, j, k) in dims.iter() {
                            assert_eq!(
                                store.get(i, j, k).to_bits(),
                                grid.get(i, j, k).to_bits()
                            );
                        }
                    }
                    Err(e) => {
                        assert!(matches!(
                            e,
                            sfc_core::SfcError::Corrupt { .. } | sfc_core::SfcError::Io { .. }
                        ));
                    }
                }
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn concurrent_readers_agree_and_never_double_count() {
        let dims = Dims3::cube(16);
        let grid = test_grid(dims);
        let dir = tmp_dir("concurrent");
        let opts = fast_opts().with_budget(6 * 4 * 4 * 4 * 4);
        let store = BrickStore::import(&dir, &grid, 4, LayoutKind::ZOrder, opts).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = &store;
                let grid = &grid;
                s.spawn(move || {
                    for (i, j, k) in dims.iter().skip(t).step_by(3) {
                        assert_eq!(store.get(i, j, k).to_bits(), grid.get(i, j, k).to_bits());
                    }
                });
            }
        });
        // Racing faults of the same brick must not inflate accounting:
        // residency is exactly (#resident bricks) × brick bytes ≤ budget.
        assert!(store.resident_bytes() <= 6 * 4 * 4 * 4 * 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_corruption_on_open_is_typed() {
        let dims = Dims3::cube(8);
        let grid = test_grid(dims);
        let dir = tmp_dir("badmanifest");
        BrickStore::import(&dir, &grid, 4, LayoutKind::ZOrder, fast_opts()).unwrap();
        flip_bit(&dir.join(MANIFEST_FILE), 20, 2).unwrap();
        let err = BrickStore::open(&dir, fast_opts()).unwrap_err();
        assert!(matches!(err, sfc_core::SfcError::Corrupt { .. }), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
