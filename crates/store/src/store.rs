//! The paged, crash-safe brick store.
//!
//! A [`BrickStore`] persists one volume as a directory of three files:
//!
//! * `manifest.v1` — the atomically-published source of truth
//!   ([`crate::manifest`]): dims, brick edge, SFC slot order, and the
//!   expected FNV-1a 64 of every brick;
//! * `bricks.dat` — fixed-size slots of `4·edge³` bytes, one brick per
//!   slot, in the manifest's space-filling-curve order;
//! * `journal.bin` — an append-only [`Journal`] of brick commits written
//!   *before* the data file during import. It is the write-ahead log
//!   that makes `kill -9` mid-import recoverable **and** the redundant
//!   copy that read-repair pulls from when a data-file brick rots.
//!
//! The read path implements [`Volume3`], so every kernel in the
//! workspace (bilateral filter, raycaster, memsim tracing) runs
//! unmodified over a volume that never fully resides in memory: bricks
//! fault in on demand through an LRU with a byte budget. Failures
//! degrade in stages — transient IO errors are retried with backoff,
//! checksum mismatches are re-read (a flipped bit in transit vanishes on
//! retry), persistent rot is repaired from the journal, and a brick that
//! cannot be recovered at all is served as quiet-NaN poison so the
//! NaN-safe kernels and the `ExecPolicy::Degraded` validation scan turn
//! it into typed `DefectMap` entries instead of an abort.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sfc_core::{fnv1a64, Axis, Dims3, LayoutKind, SfcError, SfcResult, Volume3};
use sfc_datagen::bricks::{extract_brick, BrickGeom};
use sfc_harness::durable::{write_atomic_with, Journal};
use sfc_harness::faults::{FaultyFile, IoFaultPlan};
use sfc_harness::LazyCounter;

use crate::manifest::{Manifest, SlotEntry};

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.v1";
/// Data file name inside a store directory.
pub const DATA_FILE: &str = "bricks.dat";
/// Journal file name inside a store directory.
pub const JOURNAL_FILE: &str = "journal.bin";

/// Journal record tags.
const TAG_META: &[u8; 4] = b"META";
const TAG_BRICK: &[u8; 4] = b"BRCK";
/// `TAG_BRICK` record header: tag + brick id + payload checksum.
const BRICK_RECORD_HEADER: usize = 4 + 8 + 8;
/// Journal framing header (mirrors `harness::durable`): len u32 + FNV u64.
const JOURNAL_FRAME: u64 = 12;

/// Tuning and fault wiring for a store handle.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Byte budget for resident (decoded) bricks. At least one brick is
    /// always kept resident regardless of the budget.
    pub budget_bytes: usize,
    /// Read attempts per brick before the next recovery stage (>= 1).
    pub attempts: u32,
    /// Base backoff between read attempts (attempt `n` sleeps `n ×` this).
    pub backoff: Duration,
    /// IO fault plan threaded through every data-file and journal-repair
    /// operation. Production callers leave it at
    /// [`IoFaultPlan::none`]; chaos tests script or randomize it.
    pub faults: IoFaultPlan,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            budget_bytes: 64 << 20,
            attempts: 4,
            backoff: Duration::from_millis(2),
            faults: IoFaultPlan::none(),
        }
    }
}

impl StoreOptions {
    /// Replace the byte budget.
    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.budget_bytes = bytes;
        self
    }

    /// Replace the fault plan.
    pub fn with_faults(mut self, faults: IoFaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Counters describing a store handle's lifetime behavior. Snapshot via
/// [`BrickStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Brick requests served from the resident LRU.
    pub hits: u64,
    /// Brick requests that had to touch the data file.
    pub misses: u64,
    /// Bricks evicted to stay under the byte budget.
    pub evictions: u64,
    /// Extra read attempts caused by IO errors or checksum mismatches.
    pub retries: u64,
    /// Bricks rewritten into the data file from their journal copy.
    pub repairs: u64,
    /// Bricks served from the journal copy after the data-file rewrite
    /// itself failed (data recovered, medium still bad).
    pub repair_writebacks_failed: u64,
    /// Bricks served as NaN poison because no intact copy exists.
    pub poisoned: u64,
}

#[derive(Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    retries: AtomicU64,
    repairs: AtomicU64,
    repair_writebacks_failed: AtomicU64,
    poisoned: AtomicU64,
}

// Process-wide mirrors of the per-store counters. Every increment below
// lands both in the owning store's `AtomicStats` (exact per-handle
// accounting, used by tests and `StoreStats`) and in these registry
// counters (cumulative across all stores in the process, scraped by the
// metrics plane).
static HITS_TOTAL: LazyCounter = LazyCounter::new("store.hits");
static MISSES_TOTAL: LazyCounter = LazyCounter::new("store.misses");
static EVICTIONS_TOTAL: LazyCounter = LazyCounter::new("store.evictions");
static RETRIES_TOTAL: LazyCounter = LazyCounter::new("store.retries");
static REPAIRS_TOTAL: LazyCounter = LazyCounter::new("store.repairs");
static REPAIR_WRITEBACKS_FAILED_TOTAL: LazyCounter =
    LazyCounter::new("store.repair_writebacks_failed");
static POISONED_TOTAL: LazyCounter = LazyCounter::new("store.poisoned");
static SCRUB_RUNS: LazyCounter = LazyCounter::new("store.scrub.runs");
static SCRUB_CLEAN: LazyCounter = LazyCounter::new("store.scrub.clean");
static SCRUB_REPAIRED: LazyCounter = LazyCounter::new("store.scrub.repaired");
static SCRUB_UNRECOVERABLE: LazyCounter = LazyCounter::new("store.scrub.unrecoverable");

/// Outcome of a [`BrickStore::scrub`] walk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Slots examined (always the full brick count).
    pub scanned: usize,
    /// Slots whose payload matched the manifest checksum on first read.
    pub clean: usize,
    /// Slots repaired from their journal copy.
    pub repaired: usize,
    /// Brick ids with no intact copy anywhere; reads of these bricks
    /// return NaN poison until the volume is re-imported.
    pub unrecoverable: Vec<u64>,
}

impl ScrubReport {
    /// True when every brick verified (possibly after repair).
    pub fn is_healthy(&self) -> bool {
        self.unrecoverable.is_empty()
    }
}

/// LRU of decoded resident bricks with byte-budget accounting.
struct Lru {
    map: HashMap<u64, (Arc<Vec<f32>>, u64)>,
    tick: u64,
    resident_bytes: usize,
    brick_bytes: usize,
    budget: usize,
}

impl Lru {
    fn new(brick_bytes: usize, budget: usize) -> Self {
        Self { map: HashMap::new(), tick: 0, resident_bytes: 0, brick_bytes, budget }
    }

    fn get(&mut self, id: u64) -> Option<Arc<Vec<f32>>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&id).map(|(buf, last)| {
            *last = tick;
            Arc::clone(buf)
        })
    }

    /// Insert a freshly-loaded brick, evicting least-recently-used
    /// entries to stay under budget. If a racing loader already inserted
    /// this id, the incumbent wins (no double-count) and is returned.
    fn insert(&mut self, id: u64, buf: Arc<Vec<f32>>) -> (Arc<Vec<f32>>, u64) {
        self.tick += 1;
        if let Some((existing, last)) = self.map.get_mut(&id) {
            *last = self.tick;
            return (Arc::clone(existing), 0);
        }
        let mut evicted = 0;
        while !self.map.is_empty() && self.resident_bytes + self.brick_bytes > self.budget {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(&k, _)| k)
                .expect("non-empty map has a minimum");
            self.map.remove(&oldest);
            self.resident_bytes -= self.brick_bytes;
            evicted += 1;
        }
        self.map.insert(id, (Arc::clone(&buf), self.tick));
        self.resident_bytes += self.brick_bytes;
        (buf, evicted)
    }
}

/// A crash-safe, paged, checksummed on-disk volume. See the module docs
/// for the failure model.
pub struct BrickStore {
    dir: PathBuf,
    geom: BrickGeom,
    order: LayoutKind,
    manifest: Manifest,
    /// slot → manifest entry is `manifest.slots`; this is the inverse.
    slot_of_brick: Vec<u32>,
    data: Mutex<FaultyFile>,
    lru: Mutex<Lru>,
    /// brick id → (journal payload offset, payload length, record FNV).
    journal_index: HashMap<u64, (u64, u32, u64)>,
    defects: Mutex<std::collections::BTreeSet<u64>>,
    stats: AtomicStats,
    opts: StoreOptions,
}

impl std::fmt::Debug for BrickStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrickStore")
            .field("dir", &self.dir)
            .field("dims", &self.geom.dims())
            .field("edge", &self.geom.edge())
            .field("order", &self.order)
            .field("bricks", &self.geom.brick_count())
            .finish()
    }
}

/// Run a faultable IO operation up to `attempts` times with linear
/// backoff (used where the store has no per-brick retry loop of its own,
/// e.g. opening the data file).
fn with_retry<T>(
    attempts: u32,
    backoff: Duration,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff * attempt);
        }
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("attempts >= 1 recorded an error"))
}

fn slot_bytes(geom: &BrickGeom) -> usize {
    geom.brick_len() * 4
}

fn f32s_from_le(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
        .collect()
}

fn brick_record(brick_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(BRICK_RECORD_HEADER + payload.len());
    rec.extend_from_slice(TAG_BRICK);
    rec.extend_from_slice(&brick_id.to_le_bytes());
    rec.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    rec.extend_from_slice(payload);
    rec
}

fn meta_record(dims: Dims3, edge: u32, order: LayoutKind) -> Vec<u8> {
    let mut rec = Vec::with_capacity(4 + 24 + 8);
    rec.extend_from_slice(TAG_META);
    rec.extend_from_slice(&(dims.nx as u64).to_le_bytes());
    rec.extend_from_slice(&(dims.ny as u64).to_le_bytes());
    rec.extend_from_slice(&(dims.nz as u64).to_le_bytes());
    rec.extend_from_slice(&edge.to_le_bytes());
    rec.extend_from_slice(
        &match order {
            LayoutKind::ArrayOrder => 0u32,
            LayoutKind::ZOrder => 1,
            LayoutKind::Tiled => 2,
            LayoutKind::Hilbert => 3,
        }
        .to_le_bytes(),
    );
    rec
}

fn parse_meta_record(rec: &[u8]) -> Option<(Dims3, u32, LayoutKind)> {
    if rec.len() != 4 + 24 + 8 || &rec[0..4] != TAG_META {
        return None;
    }
    let dims = Dims3::try_new(
        u64::from_le_bytes(rec[4..12].try_into().ok()?) as usize,
        u64::from_le_bytes(rec[12..20].try_into().ok()?) as usize,
        u64::from_le_bytes(rec[20..28].try_into().ok()?) as usize,
    )
    .ok()?;
    let edge = u32::from_le_bytes(rec[28..32].try_into().ok()?);
    let order = match u32::from_le_bytes(rec[32..36].try_into().ok()?) {
        0 => LayoutKind::ArrayOrder,
        1 => LayoutKind::ZOrder,
        2 => LayoutKind::Tiled,
        3 => LayoutKind::Hilbert,
        _ => return None,
    };
    Some((dims, edge, order))
}

impl BrickStore {
    /// Import `vol` into a new store at `dir` (created if missing),
    /// bricked at `edge` voxels and laid out on disk in `order`'s
    /// space-filling-curve traversal of the brick grid, then open it.
    ///
    /// Durability protocol: every brick is journaled (fsync'd) *before*
    /// its slot is written, and the manifest is published atomically
    /// only after the data file is fully synced — a crash at any point
    /// leaves either an openable store or a journal that
    /// [`BrickStore::recover`] can finish or refuse with a typed error.
    /// Any prior store in `dir` is replaced.
    pub fn import(
        dir: &Path,
        vol: &impl Volume3,
        edge: usize,
        order: LayoutKind,
        opts: StoreOptions,
    ) -> SfcResult<Self> {
        let dims = vol.dims();
        let geom = BrickGeom::try_new(dims, edge)?;
        std::fs::create_dir_all(dir)
            .map_err(|e| SfcError::io(format!("create store dir {}", dir.display()), e))?;
        // A stale manifest must not survive a partial re-import: remove it
        // first so a crash mid-import is unambiguously "unfinished".
        let manifest_path = dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            std::fs::remove_file(&manifest_path)
                .map_err(|e| SfcError::io("remove stale manifest", e))?;
        }
        let journal_path = dir.join(JOURNAL_FILE);
        let (mut journal, _) = Journal::open(&journal_path)
            .map_err(|e| SfcError::io(format!("open journal {}", journal_path.display()), e))?;
        journal
            .reset()
            .map_err(|e| SfcError::io("reset journal for re-import", e))?;
        journal
            .append(&meta_record(dims, edge as u32, order))
            .map_err(|e| SfcError::io("journal meta record", e))?;

        let data_path = dir.join(DATA_FILE);
        let mut data = FaultyFile::create(&data_path, opts.faults.clone())
            .map_err(|e| SfcError::io(format!("create {}", data_path.display()), e))?;

        let slot_ids = geom.sfc_order(order);
        let mut slots = Vec::with_capacity(slot_ids.len());
        let mut brick = vec![0.0f32; geom.brick_len()];
        let mut payload = vec![0u8; slot_bytes(&geom)];
        for &id in &slot_ids {
            extract_brick(vol, &geom, id, &mut brick);
            for (chunk, v) in payload.chunks_exact_mut(4).zip(&brick) {
                chunk.copy_from_slice(&v.to_le_bytes());
            }
            let checksum = fnv1a64(&payload);
            journal
                .append(&brick_record(id as u64, &payload))
                .map_err(|e| SfcError::io(format!("journal brick {id}"), e))?;
            data.write_all(&payload)
                .map_err(|e| SfcError::io(format!("write brick {id}"), e))?;
            slots.push(SlotEntry { brick_id: id as u64, checksum });
        }
        data.sync_all()
            .map_err(|e| SfcError::io("sync data file", e))?;
        drop(data);

        let manifest = Manifest { dims, edge: edge as u32, order, slots };
        write_atomic_with(&manifest_path, &manifest.encode(), &opts.faults)
            .map_err(|e| SfcError::io("publish manifest", e))?;
        Self::open(dir, opts)
    }

    /// Open an existing store. Fails with a typed error when the
    /// manifest is missing (unfinished import — see
    /// [`BrickStore::recover`]), corrupt, or inconsistent with the data
    /// file's size. Brick payloads are *not* verified here; they are
    /// checked on every read and by [`BrickStore::scrub`].
    pub fn open(dir: &Path, opts: StoreOptions) -> SfcResult<Self> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let what = manifest_path.display().to_string();
        if !manifest_path.exists() {
            return Err(SfcError::corrupt(
                &what,
                "manifest missing: store was never fully imported (try recover())",
            ));
        }
        let bytes = std::fs::read(&manifest_path).map_err(|e| SfcError::io(&what, e))?;
        let manifest = Manifest::parse(&bytes, &what)?;
        let geom = BrickGeom::try_new(manifest.dims, manifest.edge as usize)?;
        let count = geom.brick_count();
        if manifest.slots.len() != count {
            return Err(SfcError::corrupt(
                &what,
                format!("{} slots for {} bricks", manifest.slots.len(), count),
            ));
        }
        let mut slot_of_brick = vec![u32::MAX; count];
        for (slot, entry) in manifest.slots.iter().enumerate() {
            let id = usize::try_from(entry.brick_id)
                .ok()
                .filter(|&id| id < count)
                .ok_or_else(|| {
                    SfcError::corrupt(&what, format!("slot {slot}: brick id {} out of range", entry.brick_id))
                })?;
            if slot_of_brick[id] != u32::MAX {
                return Err(SfcError::corrupt(
                    &what,
                    format!("brick {id} appears in two slots"),
                ));
            }
            slot_of_brick[id] = slot as u32;
        }

        let data_path = dir.join(DATA_FILE);
        let data = with_retry(opts.attempts, opts.backoff, || {
            FaultyFile::options(
                OpenOptions::new().read(true).write(true),
                &data_path,
                opts.faults.clone(),
            )
        })
        .map_err(|e| SfcError::io(format!("open {}", data_path.display()), e))?;
        let file_len = data
            .metadata()
            .map_err(|e| SfcError::io("data file metadata", e))?
            .len();
        let want_len = (count as u64) * slot_bytes(&geom) as u64;
        if file_len < want_len {
            return Err(SfcError::corrupt(
                data_path.display().to_string(),
                format!("data file holds {file_len} bytes, manifest requires {want_len}"),
            ));
        }

        let journal_index = index_journal(&dir.join(JOURNAL_FILE), slot_bytes(&geom));
        let brick_bytes = geom.brick_len() * std::mem::size_of::<f32>();
        Ok(Self {
            dir: dir.to_path_buf(),
            geom,
            order: manifest.order,
            slot_of_brick,
            lru: Mutex::new(Lru::new(brick_bytes, opts.budget_bytes)),
            data: Mutex::new(data),
            journal_index,
            defects: Mutex::new(Default::default()),
            stats: AtomicStats::default(),
            manifest,
            opts,
        })
    }

    /// Finish (or validate) an interrupted import from the journal: if
    /// the journal holds the meta record and every brick, the data file
    /// and manifest are rebuilt and the store opened; otherwise a typed
    /// error reports how far the import got. A store whose manifest
    /// already exists opens directly.
    pub fn recover(dir: &Path, opts: StoreOptions) -> SfcResult<Self> {
        if dir.join(MANIFEST_FILE).exists() {
            return Self::open(dir, opts);
        }
        let journal_path = dir.join(JOURNAL_FILE);
        let what = journal_path.display().to_string();
        let (_, recovery) = Journal::open(&journal_path).map_err(|e| SfcError::io(&what, e))?;
        let mut records = recovery.records.iter();
        let Some((dims, edge, order)) = records.next().and_then(|r| parse_meta_record(r)) else {
            return Err(SfcError::corrupt(&what, "journal has no meta record; nothing to recover"));
        };
        let geom = BrickGeom::try_new(dims, edge as usize)?;
        let expect = slot_bytes(&geom);
        // Later copies of a brick supersede earlier ones.
        let mut payloads: HashMap<u64, &[u8]> = HashMap::new();
        for rec in records {
            if rec.len() == BRICK_RECORD_HEADER + expect && &rec[0..4] == TAG_BRICK {
                let id = u64::from_le_bytes(rec[4..12].try_into().expect("sized"));
                let sum = u64::from_le_bytes(rec[12..20].try_into().expect("sized"));
                let payload = &rec[BRICK_RECORD_HEADER..];
                if fnv1a64(payload) == sum {
                    payloads.insert(id, payload);
                }
            }
        }
        let count = geom.brick_count();
        if payloads.len() < count {
            return Err(SfcError::corrupt(
                &what,
                format!(
                    "import incomplete: journal holds {} of {count} bricks; re-import required",
                    payloads.len()
                ),
            ));
        }
        // Rebuild the data file in SFC order, then publish the manifest.
        let data_path = dir.join(DATA_FILE);
        let mut data = FaultyFile::create(&data_path, opts.faults.clone())
            .map_err(|e| SfcError::io(format!("create {}", data_path.display()), e))?;
        let slot_ids = geom.sfc_order(order);
        let mut slots = Vec::with_capacity(count);
        for &id in &slot_ids {
            let payload = payloads[&(id as u64)];
            data.write_all(payload)
                .map_err(|e| SfcError::io(format!("rebuild brick {id}"), e))?;
            slots.push(SlotEntry { brick_id: id as u64, checksum: fnv1a64(payload) });
        }
        data.sync_all().map_err(|e| SfcError::io("sync rebuilt data file", e))?;
        drop(data);
        let manifest = Manifest { dims, edge, order, slots };
        write_atomic_with(&dir.join(MANIFEST_FILE), &manifest.encode(), &opts.faults)
            .map_err(|e| SfcError::io("publish recovered manifest", e))?;
        Self::open(dir, opts)
    }

    /// Brick geometry of the stored volume.
    pub fn geom(&self) -> &BrickGeom {
        &self.geom
    }

    /// Space-filling curve ordering bricks on disk.
    pub fn order(&self) -> LayoutKind {
        self.order
    }

    /// Store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            repairs: self.stats.repairs.load(Ordering::Relaxed),
            repair_writebacks_failed: self
                .stats
                .repair_writebacks_failed
                .load(Ordering::Relaxed),
            poisoned: self.stats.poisoned.load(Ordering::Relaxed),
        }
    }

    /// Bytes of decoded bricks currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.lru.lock().expect("lru lock").resident_bytes
    }

    /// Brick ids that have been served as NaN poison (no intact copy).
    pub fn defective_bricks(&self) -> Vec<u64> {
        self.defects.lock().expect("defects lock").iter().copied().collect()
    }

    fn slot_of(&self, brick_id: usize) -> usize {
        self.slot_of_brick[brick_id] as usize
    }

    /// Read slot `slot` raw, once, through the fault plan.
    fn read_slot_once(&self, slot: usize) -> std::io::Result<Vec<u8>> {
        let n = slot_bytes(&self.geom);
        let mut buf = vec![0u8; n];
        let mut data = self.data.lock().expect("data lock");
        data.seek(SeekFrom::Start((slot * n) as u64))?;
        data.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Read a brick's payload and verify its manifest checksum, with
    /// bounded retry + linear backoff across both IO errors and
    /// checksum mismatches (a bit flipped *in transit* disappears on
    /// re-read; one flipped *on disk* does not and falls through to
    /// read-repair).
    fn read_verified(&self, brick_id: usize) -> SfcResult<Vec<u8>> {
        let slot = self.slot_of(brick_id);
        let want = self.manifest.slots[slot].checksum;
        let mut last_err: Option<SfcError> = None;
        for attempt in 0..self.opts.attempts.max(1) {
            if attempt > 0 {
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
                RETRIES_TOTAL.add(1);
                std::thread::sleep(self.opts.backoff * attempt);
            }
            match self.read_slot_once(slot) {
                Ok(payload) => {
                    let got = fnv1a64(&payload);
                    if got == want {
                        return Ok(payload);
                    }
                    last_err = Some(SfcError::corrupt(
                        format!("brick {brick_id} (slot {slot})"),
                        format!("checksum mismatch: manifest {want:#018x}, read {got:#018x}"),
                    ));
                }
                Err(e) => {
                    last_err = Some(SfcError::io(format!("read brick {brick_id}"), e));
                }
            }
        }
        Err(last_err.expect("attempts >= 1 recorded an error"))
    }

    /// Fetch a brick's journal copy, verify it, and rewrite the data
    /// slot from it. Returns the verified payload even when the
    /// write-back fails (the caller still gets good data; the medium
    /// stays bad and is counted).
    fn repair_from_journal(&self, brick_id: usize) -> SfcResult<Vec<u8>> {
        let what = format!("read-repair brick {brick_id}");
        let &(offset, len, want_sum) = self
            .journal_index
            .get(&(brick_id as u64))
            .ok_or_else(|| SfcError::corrupt(&what, "no journal copy"))?;
        let journal_path = self.dir.join(JOURNAL_FILE);
        let payload = with_retry(self.opts.attempts, self.opts.backoff, || {
            let mut payload = vec![0u8; len as usize];
            let mut f = FaultyFile::open(&journal_path, self.opts.faults.clone())?;
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(&mut payload)?;
            Ok(payload)
        })
        .map_err(|e| SfcError::io(&what, e))?;
        if fnv1a64(&payload) != want_sum {
            return Err(SfcError::corrupt(&what, "journal copy is itself corrupt"));
        }
        let slot = self.slot_of(brick_id);
        if fnv1a64(&payload) != self.manifest.slots[slot].checksum {
            return Err(SfcError::corrupt(&what, "journal copy disagrees with manifest"));
        }
        let n = slot_bytes(&self.geom);
        let write_back = (|| -> std::io::Result<()> {
            let mut data = self.data.lock().expect("data lock");
            data.seek(SeekFrom::Start((slot * n) as u64))?;
            data.write_all(&payload)?;
            data.sync_data()
        })();
        match write_back {
            Ok(()) => {
                self.stats.repairs.fetch_add(1, Ordering::Relaxed);
                REPAIRS_TOTAL.add(1);
            }
            Err(_) => {
                self.stats
                    .repair_writebacks_failed
                    .fetch_add(1, Ordering::Relaxed);
                REPAIR_WRITEBACKS_FAILED_TOTAL.add(1);
            }
        }
        Ok(payload)
    }

    /// Load one brick through the full recovery ladder:
    /// verified read → read-repair from journal → NaN poison.
    fn load_brick(&self, brick_id: usize) -> Arc<Vec<f32>> {
        match self.read_verified(brick_id) {
            Ok(payload) => Arc::new(f32s_from_le(&payload)),
            Err(_) => match self.repair_from_journal(brick_id) {
                Ok(payload) => Arc::new(f32s_from_le(&payload)),
                Err(_) => {
                    self.stats.poisoned.fetch_add(1, Ordering::Relaxed);
                    POISONED_TOTAL.add(1);
                    self.defects
                        .lock()
                        .expect("defects lock")
                        .insert(brick_id as u64);
                    Arc::new(vec![f32::NAN; self.geom.brick_len()])
                }
            },
        }
    }

    /// Get a brick (resident or faulted in). Public so streaming drivers
    /// can prefetch along the SFC order.
    pub fn brick(&self, brick_id: usize) -> Arc<Vec<f32>> {
        assert!(brick_id < self.geom.brick_count(), "brick id out of range");
        let id = brick_id as u64;
        if let Some(hit) = self.lru.lock().expect("lru lock").get(id) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            HITS_TOTAL.add(1);
            return hit;
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        MISSES_TOTAL.add(1);
        // Load outside the LRU lock: concurrent loaders of the same brick
        // race harmlessly (insert() keeps the incumbent, the loser's read
        // is dropped) and loaders of different bricks overlap their IO.
        let buf = self.load_brick(brick_id);
        let (buf, evicted) = self.lru.lock().expect("lru lock").insert(id, buf);
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
            EVICTIONS_TOTAL.add(evicted);
        }
        buf
    }

    /// Walk every brick verifying checksums, repairing rot from the
    /// journal where possible. Resident copies are untouched (they were
    /// verified when loaded); the scrub reads the *disk* state.
    pub fn scrub(&self) -> ScrubReport {
        let mut report = ScrubReport { scanned: self.geom.brick_count(), ..Default::default() };
        for id in 0..self.geom.brick_count() {
            match self.read_verified(id) {
                Ok(_) => report.clean += 1,
                Err(_) => match self.repair_from_journal(id) {
                    Ok(_) => report.repaired += 1,
                    Err(_) => {
                        self.defects.lock().expect("defects lock").insert(id as u64);
                        report.unrecoverable.push(id as u64);
                    }
                },
            }
        }
        SCRUB_RUNS.add(1);
        SCRUB_CLEAN.add(report.clean as u64);
        SCRUB_REPAIRED.add(report.repaired as u64);
        SCRUB_UNRECOVERABLE.add(report.unrecoverable.len() as u64);
        report
    }
}

/// Build the brick id → journal record location index by streaming the
/// journal's framing headers (payloads are *skipped*, not read — the
/// index costs O(records), not O(volume)). Torn or short tails simply
/// end the scan; payload integrity is re-checked at repair time against
/// the recorded FNV.
fn index_journal(path: &Path, expect_payload: usize) -> HashMap<u64, (u64, u32, u64)> {
    let mut index = HashMap::new();
    let Ok(mut f) = File::open(path) else {
        return index;
    };
    let Ok(meta) = f.metadata() else {
        return index;
    };
    let file_len = meta.len();
    let mut pos = 0u64;
    let mut header = [0u8; 12 + BRICK_RECORD_HEADER];
    while pos + JOURNAL_FRAME <= file_len {
        if f.seek(SeekFrom::Start(pos)).is_err() {
            break;
        }
        // Read the frame header plus (maybe) a brick record header.
        let avail = ((file_len - pos) as usize).min(header.len());
        if f.read_exact(&mut header[..avail]).is_err() {
            break;
        }
        let rec_len = u32::from_le_bytes(header[0..4].try_into().expect("sized")) as u64;
        let next = pos + JOURNAL_FRAME + rec_len;
        if next > file_len {
            break; // torn tail
        }
        if avail == header.len()
            && rec_len as usize == BRICK_RECORD_HEADER + expect_payload
            && &header[12..16] == TAG_BRICK
        {
            let id = u64::from_le_bytes(header[16..24].try_into().expect("sized"));
            let sum = u64::from_le_bytes(header[24..32].try_into().expect("sized"));
            index.insert(
                id,
                (
                    pos + JOURNAL_FRAME + BRICK_RECORD_HEADER as u64,
                    expect_payload as u32,
                    sum,
                ),
            );
        }
        pos = next;
    }
    index
}

impl Volume3 for BrickStore {
    #[inline]
    fn dims(&self) -> Dims3 {
        self.geom.dims()
    }

    #[inline]
    fn get(&self, i: usize, j: usize, k: usize) -> f32 {
        let id = self.geom.brick_of_voxel(i, j, k);
        let brick = self.brick(id);
        brick[self.geom.offset_in_brick(i, j, k)]
    }

    fn gather_axis_run(&self, i: usize, j: usize, k: usize, axis: Axis, dst: &mut [f32]) {
        // Amortize the LRU round-trip: a run crosses a brick boundary at
        // most every `edge` samples, so hold the current brick until the
        // coordinate leaves it.
        let mut cur: Option<(usize, Arc<Vec<f32>>)> = None;
        for (t, v) in dst.iter_mut().enumerate() {
            let (ci, cj, ck) = match axis {
                Axis::X => (i + t, j, k),
                Axis::Y => (i, j + t, k),
                Axis::Z => (i, j, k + t),
            };
            let id = self.geom.brick_of_voxel(ci, cj, ck);
            if !matches!(&cur, Some((cid, _)) if *cid == id) {
                cur = Some((id, self.brick(id)));
            }
            let (_, brick) = cur.as_ref().expect("set above");
            *v = brick[self.geom.offset_in_brick(ci, cj, ck)];
        }
    }
}
