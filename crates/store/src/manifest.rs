//! The store's versioned, checksummed manifest.
//!
//! The manifest is the *only* file a reader trusts a priori: it is
//! published atomically (temp + fsync + rename via
//! [`sfc_harness::durable::write_atomic`]-family calls), carries a
//! trailing FNV-1a 64 over its own bytes, and records the expected
//! FNV-1a 64 of every brick slot in the data file. A store without an
//! intact manifest is an *unfinished import* — `BrickStore::open`
//! refuses it with a typed error and `BrickStore::recover` rebuilds it
//! from the journal.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "SFCM"
//!      4     4  version (currently 1)
//!      8     8  nx
//!     16     8  ny
//!     24     8  nz
//!     32     4  brick edge (voxels)
//!     36     4  brick order (LayoutKind: 0=a 1=z 2=tiled 3=hilbert)
//!     40     8  slot count
//!     48   16n  per slot: brick id (u64), brick checksum (FNV-1a 64)
//!  48+16n     8  FNV-1a 64 of bytes [0, 48+16n)
//! ```
//!
//! Slot *s* of the data file holds the brick whose row-major id is
//! `slots[s]`; the slot order is the space-filling-curve traversal of
//! the brick grid chosen at import time, so spatially adjacent bricks
//! are adjacent on disk.

use sfc_core::{Dims3, LayoutKind, SfcError, SfcResult};

use sfc_core::fnv1a64;

/// Manifest magic bytes.
pub const MANIFEST_MAGIC: &[u8; 4] = b"SFCM";
/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;
/// Fixed-size header length (before the slot table).
const HEADER: usize = 4 + 4 + 8 + 8 + 8 + 4 + 4 + 8;
/// Bytes per slot-table entry.
const ENTRY: usize = 8 + 8;

/// One slot of the data file: which brick lives there and what its
/// payload must hash to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotEntry {
    /// Row-major brick id (see `sfc_datagen::BrickGeom::brick_id`).
    pub brick_id: u64,
    /// FNV-1a 64 of the slot's `4·edge³` payload bytes.
    pub checksum: u64,
}

/// Parsed, validated manifest contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Logical volume dimensions.
    pub dims: Dims3,
    /// Brick edge in voxels.
    pub edge: u32,
    /// Space-filling curve ordering the bricks on disk.
    pub order: LayoutKind,
    /// Slot table, in data-file slot order.
    pub slots: Vec<SlotEntry>,
}

fn kind_code(kind: LayoutKind) -> u32 {
    match kind {
        LayoutKind::ArrayOrder => 0,
        LayoutKind::ZOrder => 1,
        LayoutKind::Tiled => 2,
        LayoutKind::Hilbert => 3,
    }
}

fn kind_from_code(code: u32) -> Option<LayoutKind> {
    match code {
        0 => Some(LayoutKind::ArrayOrder),
        1 => Some(LayoutKind::ZOrder),
        2 => Some(LayoutKind::Tiled),
        3 => Some(LayoutKind::Hilbert),
        _ => None,
    }
}

fn corrupt(what: &str, reason: impl Into<String>) -> SfcError {
    SfcError::Corrupt {
        what: what.to_string(),
        reason: reason.into(),
    }
}

fn rd_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("length pre-checked"))
}

fn rd_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("length pre-checked"))
}

impl Manifest {
    /// Serialize to the on-disk byte layout (trailing self-checksum
    /// included).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER + ENTRY * self.slots.len() + 8);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.dims.nx as u64).to_le_bytes());
        out.extend_from_slice(&(self.dims.ny as u64).to_le_bytes());
        out.extend_from_slice(&(self.dims.nz as u64).to_le_bytes());
        out.extend_from_slice(&self.edge.to_le_bytes());
        out.extend_from_slice(&kind_code(self.order).to_le_bytes());
        out.extend_from_slice(&(self.slots.len() as u64).to_le_bytes());
        for s in &self.slots {
            out.extend_from_slice(&s.brick_id.to_le_bytes());
            out.extend_from_slice(&s.checksum.to_le_bytes());
        }
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parse and validate manifest bytes. Every failure is a typed
    /// [`SfcError`] naming the integrity check that failed — corrupt or
    /// truncated manifests must never panic.
    pub fn parse(bytes: &[u8], what: &str) -> SfcResult<Self> {
        if bytes.len() < HEADER + 8 {
            return Err(corrupt(
                what,
                format!("manifest truncated: {} bytes < minimum {}", bytes.len(), HEADER + 8),
            ));
        }
        if &bytes[0..4] != MANIFEST_MAGIC {
            return Err(corrupt(what, "bad magic (not an SFCM manifest)"));
        }
        let version = rd_u32(bytes, 4);
        if version != MANIFEST_VERSION {
            return Err(corrupt(
                what,
                format!("unsupported manifest version {version} (expected {MANIFEST_VERSION})"),
            ));
        }
        // Verify the whole-file checksum before trusting any count field:
        // a bit flip in `nslots` must not drive the slot-table walk.
        let body_len = bytes.len() - 8;
        let want = rd_u64(bytes, body_len);
        let got = fnv1a64(&bytes[..body_len]);
        if want != got {
            return Err(corrupt(
                what,
                format!("manifest checksum mismatch: stored {want:#018x}, computed {got:#018x}"),
            ));
        }
        let nx = rd_u64(bytes, 8);
        let ny = rd_u64(bytes, 16);
        let nz = rd_u64(bytes, 24);
        let to_usize = |v: u64, axis: &str| -> SfcResult<usize> {
            usize::try_from(v)
                .map_err(|_| corrupt(what, format!("dimension {axis}={v} exceeds usize")))
        };
        let dims = Dims3::try_new(
            to_usize(nx, "nx")?,
            to_usize(ny, "ny")?,
            to_usize(nz, "nz")?,
        )?;
        let edge = rd_u32(bytes, 32);
        if edge == 0 {
            return Err(corrupt(what, "brick edge 0"));
        }
        let order = kind_from_code(rd_u32(bytes, 36))
            .ok_or_else(|| corrupt(what, format!("unknown brick order code {}", rd_u32(bytes, 36))))?;
        let nslots = rd_u64(bytes, 40);
        let nslots = to_usize(nslots, "nslots")?;
        let expect_len = HEADER + ENTRY * nslots + 8;
        if bytes.len() != expect_len {
            return Err(corrupt(
                what,
                format!(
                    "slot table size mismatch: {} slots need {expect_len} bytes, file has {}",
                    nslots,
                    bytes.len()
                ),
            ));
        }
        let mut slots = Vec::with_capacity(nslots);
        for s in 0..nslots {
            let at = HEADER + ENTRY * s;
            slots.push(SlotEntry {
                brick_id: rd_u64(bytes, at),
                checksum: rd_u64(bytes, at + 8),
            });
        }
        Ok(Self { dims, edge, order, slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            dims: Dims3::new(9, 6, 4),
            edge: 4,
            order: LayoutKind::ZOrder,
            slots: vec![
                SlotEntry { brick_id: 0, checksum: 0xdead_beef },
                SlotEntry { brick_id: 3, checksum: 1 },
                SlotEntry { brick_id: 1, checksum: u64::MAX },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let bytes = m.encode();
        assert_eq!(Manifest::parse(&bytes, "test").unwrap(), m);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample().encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut b = bytes.clone();
                b[byte] ^= 1 << bit;
                assert!(
                    Manifest::parse(&b, "test").is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let err = Manifest::parse(&bytes[..cut], "test").unwrap_err();
            assert!(
                matches!(err, SfcError::Corrupt { .. } | SfcError::InvalidDims { .. }),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn all_orders_roundtrip() {
        for kind in LayoutKind::ALL {
            let m = Manifest { order: kind, ..sample() };
            assert_eq!(Manifest::parse(&m.encode(), "t").unwrap().order, kind);
        }
    }
}
