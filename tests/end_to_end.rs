//! Cross-crate integration tests: full pipelines from data synthesis
//! through kernels to counters, spanning every workspace crate.

use sfc_repro::prelude::*;
use sfc_repro::{datagen, filters, memsim, volrend};

fn combustion(dims: Dims3) -> Vec<f32> {
    datagen::combustion_field(dims, 11, datagen::CombustionParams::default())
}

#[test]
fn full_bilateral_pipeline_all_layouts_agree() {
    let dims = Dims3::new(20, 18, 14);
    let noisy = datagen::mri_phantom(dims, 3, datagen::PhantomParams::default());
    let a: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(dims, &noisy);
    let z: Grid3<f32, ZOrder3> = a.convert();
    let t: Grid3<f32, Tiled3> = a.convert();
    let h: Grid3<f32, HilbertOrder3> = a.convert();

    let run = filters::FilterRun {
        params: filters::BilateralParams::for_size(StencilSize::R1, StencilOrder::Zyx),
        pencil_axis: Axis::Z,
        weight: Default::default(),
        nthreads: 3,
    };
    let oa: Grid3<f32, ArrayOrder3> = filters::bilateral3d(&a, &run);
    let oz: Grid3<f32, ArrayOrder3> = filters::bilateral3d(&z, &run);
    let ot: Grid3<f32, ArrayOrder3> = filters::bilateral3d(&t, &run);
    let oh: Grid3<f32, ArrayOrder3> = filters::bilateral3d(&h, &run);
    assert_eq!(oa.to_row_major(), oz.to_row_major());
    assert_eq!(oa.to_row_major(), ot.to_row_major());
    assert_eq!(oa.to_row_major(), oh.to_row_major());
}

#[test]
fn bilateral_denoises_the_phantom() {
    let dims = Dims3::cube(24);
    let clean = datagen::mri_phantom(
        dims,
        5,
        datagen::PhantomParams {
            lesions: 2,
            noise_sigma: 0.0,
        },
    );
    let noisy = datagen::mri_phantom(
        dims,
        5,
        datagen::PhantomParams {
            lesions: 2,
            noise_sigma: 0.05,
        },
    );
    let g: Grid3<f32, ZOrder3> = Grid3::from_row_major(dims, &noisy);
    let run = filters::FilterRun {
        params: filters::BilateralParams {
            radius: 2,
            sigma_spatial: 1.5,
            sigma_range: 0.15,
            order: StencilOrder::Xyz,
        },
        pencil_axis: Axis::X,
        weight: Default::default(),
        nthreads: 2,
    };
    let out: Grid3<f32, ZOrder3> = filters::bilateral3d(&g, &run);
    let rmse = |a: &[f32], b: &[f32]| {
        (a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f32>()
            / a.len() as f32)
            .sqrt()
    };
    let before = rmse(&noisy, &clean);
    let after = rmse(&out.to_row_major(), &clean);
    assert!(
        after < before * 0.8,
        "filter must reduce noise: rmse {before} -> {after}"
    );
}

#[test]
fn full_render_pipeline_layout_and_schedule_invariant() {
    let dims = Dims3::cube(24);
    let values = combustion(dims);
    let a: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();
    let center = volrend::vec3(12.0, 12.0, 12.0);
    let cams = orbit_viewpoints(
        8,
        center,
        60.0,
        Projection::Perspective {
            fov_y: 40f32.to_radians(),
        },
        48,
        48,
    );
    let tf = TransferFunction::fire();
    for cam in &cams {
        let ia = volrend::render(&a, cam, &tf, &RenderOpts {
            nthreads: 4,
            schedule: Schedule::Dynamic,
            ..Default::default()
        });
        let iz = volrend::render(&z, cam, &tf, &RenderOpts {
            nthreads: 2,
            schedule: Schedule::StaticRoundRobin,
            ..Default::default()
        });
        assert_eq!(ia.pixels(), iz.pixels());
    }
}

#[test]
fn counters_show_viewpoint_invariance_for_zorder_only() {
    // The paper's Fig. 4: array-order counters swing with viewpoint;
    // Z-order stays nearly flat.
    let dims = Dims3::cube(32);
    let values = combustion(dims);
    let a: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();
    let cams = orbit_viewpoints(
        8,
        volrend::vec3(16.0, 16.0, 16.0),
        80.0,
        Projection::Perspective {
            fov_y: 40f32.to_radians(),
        },
        32,
        32,
    );
    let tf = TransferFunction::grayscale();
    let opts = RenderOpts {
        tile: 8,
        ..Default::default()
    };
    let plat = memsim::scaled(&memsim::ivy_bridge(), memsim::shift_for_volume_edge(32));
    let tca = |g: &dyn Fn(usize) -> u64| (0..8).map(g).collect::<Vec<u64>>();
    let tca_a = tca(&|v| {
        volrend::simulate_render_counters(&a, &cams[v], &tf, &opts, 2, &plat)
            .l3_total_cache_accesses()
    });
    let tca_z = tca(&|v| {
        volrend::simulate_render_counters(&z, &cams[v], &tf, &opts, 2, &plat)
            .l3_total_cache_accesses()
    });
    let spread = |v: &[u64]| {
        let max = *v.iter().max().unwrap() as f64;
        let min = *v.iter().min().unwrap() as f64;
        max / min
    };
    assert!(
        spread(&tca_a) > spread(&tca_z),
        "array-order viewpoint spread {:?} must exceed z-order {:?}",
        tca_a,
        tca_z
    );
    // Aligned viewpoints (0, 4) are array order's best; oblique (2, 6) its worst.
    assert!(tca_a[2] > tca_a[0]);
    assert!(tca_a[6] > tca_a[4]);
}

#[test]
fn volume_io_roundtrip_through_grid() {
    let dims = Dims3::new(10, 8, 6);
    let values = combustion(dims);
    let path = std::env::temp_dir().join(format!("sfc_e2e_{}.raw", std::process::id()));
    datagen::save_raw_f32(&path, &values).unwrap();
    let loaded = datagen::load_raw_f32(&path, dims).unwrap();
    std::fs::remove_file(&path).ok();
    let g: Grid3<f32, ZOrder3> = Grid3::from_row_major(dims, &loaded);
    assert_eq!(g.to_row_major(), values);
}

/// Bitwise equality against a serial oracle: the execution engine may
/// reorder *work*, never *arithmetic*.
fn assert_bits_equal(label: &str, got: &[f32], oracle: &[f32]) {
    assert_eq!(got.len(), oracle.len(), "{label}: length mismatch");
    for (i, (g, o)) in got.iter().zip(oracle).enumerate() {
        assert!(
            g.to_bits() == o.to_bits(),
            "{label}: voxel {i} diverged from the serial oracle: {g:?} vs {o:?}"
        );
    }
}

#[test]
fn engine_bilateral_is_bitwise_pinned_across_layouts_threads_and_schedules() {
    // The engine refactor contract: every (layout, thread count, schedule)
    // combination reproduces the independent single-threaded reference
    // bit for bit — partitioning must never change what gets computed.
    let dims = Dims3::new(14, 12, 10);
    let noisy = datagen::mri_phantom(dims, 21, datagen::PhantomParams::default());
    let params = filters::BilateralParams::for_size(StencilSize::R1, StencilOrder::Xyz);

    let a: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(dims, &noisy);
    // The pinned oracle is the production kernel on the engine's serial
    // fast path (one thread, array order); the independent per-voxel
    // reference agrees to float tolerance (its summation order differs by
    // design, so it cannot be the *bitwise* baseline).
    let serial = filters::FilterRun {
        params,
        pencil_axis: Axis::X,
        weight: Default::default(),
        nthreads: 1,
    };
    let oracle = filters::bilateral3d::<_, ArrayOrder3>(&a, &serial).to_row_major();
    let reference = filters::bilateral_reference(&noisy, dims, &params);
    for (g, r) in oracle.iter().zip(&reference) {
        assert!((g - r).abs() <= 1e-5, "oracle sanity: {g} vs reference {r}");
    }
    let z: Grid3<f32, ZOrder3> = a.convert();
    let t: Grid3<f32, Tiled3> = a.convert();
    let h: Grid3<f32, HilbertOrder3> = a.convert();

    fn both_schedules<V: Volume3 + Sync>(
        vol: &V,
        params: &filters::BilateralParams,
        nthreads: usize,
        label: &str,
        oracle: &[f32],
    ) {
        let run = filters::FilterRun {
            params: *params,
            pencil_axis: Axis::X,
            weight: Default::default(),
            nthreads,
        };
        let st: Grid3<f32, ArrayOrder3> = filters::bilateral3d(vol, &run);
        assert_bits_equal(
            &format!("{label} t{nthreads} static"),
            &st.to_row_major(),
            oracle,
        );
        let dy: Grid3<f32, ArrayOrder3> =
            filters::bilateral3d_dynamic(vol, params, Axis::X, nthreads);
        assert_bits_equal(
            &format!("{label} t{nthreads} dynamic"),
            &dy.to_row_major(),
            oracle,
        );
    }

    for &nthreads in &[1usize, 2, 4] {
        both_schedules(&a, &params, nthreads, "array", &oracle);
        both_schedules(&z, &params, nthreads, "z-order", &oracle);
        both_schedules(&t, &params, nthreads, "tiled", &oracle);
        both_schedules(&h, &params, nthreads, "hilbert", &oracle);
    }
}

#[test]
fn engine_raycast_is_bitwise_pinned_across_layouts_threads_and_schedules() {
    // Same contract for the renderer: a serial per-ray oracle (no tiles,
    // no threads, no engine) pins every engine-driven configuration.
    let dims = Dims3::cube(16);
    let values = combustion(dims);
    let a: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();
    let t: Grid3<f32, Tiled3> = a.convert();
    let h: Grid3<f32, HilbertOrder3> = a.convert();

    let cams = orbit_viewpoints(
        8,
        volrend::vec3(8.0, 8.0, 8.0),
        40.0,
        Projection::Perspective {
            fov_y: 40f32.to_radians(),
        },
        24,
        24,
    );
    let cam = &cams[3]; // an oblique viewpoint: tiles do unequal work
    let tf = TransferFunction::fire();
    let base = RenderOpts {
        tile: 8,
        ..Default::default()
    };

    let bbox = volrend::Aabb::of_dims(dims);
    let mut oracle: Vec<f32> = Vec::with_capacity(cam.width() * cam.height() * 4);
    for py in 0..cam.height() {
        for px in 0..cam.width() {
            let c = volrend::shade_ray(&a, &tf, &base, &cam.ray_for_pixel(px, py), &bbox);
            oracle.extend_from_slice(&[c.r, c.g, c.b, c.a]);
        }
    }

    fn components(img: &volrend::Image) -> Vec<f32> {
        img.pixels()
            .iter()
            .flat_map(|p| [p.r, p.g, p.b, p.a])
            .collect()
    }
    fn both_schedules<V: Volume3 + Sync>(
        vol: &V,
        cam: &Camera,
        tf: &TransferFunction,
        base: &RenderOpts,
        nthreads: usize,
        label: &str,
        oracle: &[f32],
    ) {
        for schedule in [Schedule::StaticRoundRobin, Schedule::Dynamic] {
            let img = volrend::render(
                vol,
                cam,
                tf,
                &RenderOpts {
                    nthreads,
                    schedule,
                    ..*base
                },
            );
            assert_bits_equal(
                &format!("{label} t{nthreads} {schedule:?}"),
                &components(&img),
                oracle,
            );
        }
    }

    for &nthreads in &[1usize, 2, 4] {
        both_schedules(&a, cam, &tf, &base, nthreads, "array", &oracle);
        both_schedules(&z, cam, &tf, &base, nthreads, "z-order", &oracle);
        both_schedules(&t, cam, &tf, &base, nthreads, "tiled", &oracle);
        both_schedules(&h, cam, &tf, &base, nthreads, "hilbert", &oracle);
    }
}

#[test]
fn brownout_without_pressure_is_bitwise_identical_to_plain_across_layouts() {
    // The brownout invariant: with no deadline and no faults the brownout
    // stack is pure overhead — admission always grants full quality, so
    // the output must be bitwise-identical to the Plain policy and the
    // QualityMap must stay empty, for every layout and both kernels.
    use sfc_repro::harness::FaultPlan;
    use std::time::Duration;

    let cfg = SupervisorConfig {
        nthreads: 4,
        max_retries: 1,
        backoff_base: Duration::from_millis(1),
        timeout: Some(Duration::from_millis(1000)),
        watchdog_poll: Duration::from_millis(2),
        ..Default::default()
    };
    let brownout = ExecPolicy::brownout(cfg, DeadlineBudget::none(), None);
    let faults = FaultPlan::none();

    // Bilateral: Plain oracle on array order pins every layout.
    let dims = Dims3::new(14, 12, 10);
    let noisy = datagen::mri_phantom(dims, 33, datagen::PhantomParams::default());
    let a: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(dims, &noisy);
    let run = filters::FilterRun {
        params: filters::BilateralParams::for_size(StencilSize::R1, StencilOrder::Xyz),
        pencil_axis: Axis::X,
        weight: Default::default(),
        nthreads: 4,
    };
    let mut plain = Grid3::<f32, ArrayOrder3>::new(dims);
    filters::try_bilateral3d_with_policy(&a, &mut plain, &run, &ExecPolicy::Plain, &faults)
        .unwrap();
    let oracle = plain.to_row_major();

    fn bilateral_case<V: Volume3 + Sync>(
        vol: &V,
        run: &filters::FilterRun,
        policy: &ExecPolicy,
        faults: &sfc_repro::harness::FaultPlan,
        label: &str,
        oracle: &[f32],
    ) {
        let mut out = Grid3::<f32, ArrayOrder3>::new(vol.dims());
        let outcome =
            filters::try_bilateral3d_with_policy(vol, &mut out, run, policy, faults).unwrap();
        assert!(
            outcome.quality.is_full_quality(),
            "{label}: no-pressure brownout must not downgrade, got {}",
            outcome.quality
        );
        assert!(outcome.output_is_whole(), "{label}: must end whole");
        for (i, (g, o)) in out.to_row_major().iter().zip(oracle).enumerate() {
            assert!(
                g.to_bits() == o.to_bits(),
                "{label}: voxel {i} diverged from Plain: {g:?} vs {o:?}"
            );
        }
    }
    bilateral_case(&a, &run, &brownout, &faults, "bilateral array", &oracle);
    bilateral_case(
        &a.convert::<ZOrder3>(), &run, &brownout, &faults, "bilateral z-order", &oracle,
    );
    bilateral_case(
        &a.convert::<Tiled3>(), &run, &brownout, &faults, "bilateral tiled", &oracle,
    );
    bilateral_case(
        &a.convert::<HilbertOrder3>(), &run, &brownout, &faults, "bilateral hilbert", &oracle,
    );

    // Raycast: same contract, pinned on an oblique orbit viewpoint.
    let vdims = Dims3::cube(16);
    let field = combustion(vdims);
    let va: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(vdims, &field);
    let cams = orbit_viewpoints(
        8,
        volrend::vec3(8.0, 8.0, 8.0),
        40.0,
        Projection::Perspective {
            fov_y: 40f32.to_radians(),
        },
        24,
        24,
    );
    let cam = &cams[3];
    let tf = TransferFunction::fire();
    let opts = RenderOpts {
        tile: 8,
        nthreads: 4,
        ..Default::default()
    };
    let (plain_img, _) =
        volrend::render_with_policy(&va, cam, &tf, &opts, &ExecPolicy::Plain, &faults).unwrap();
    let pixel_oracle: Vec<f32> = plain_img
        .pixels()
        .iter()
        .flat_map(|p| [p.r, p.g, p.b, p.a])
        .collect();

    fn render_case<V: Volume3 + Sync>(
        vol: &V,
        cam: &Camera,
        tf: &TransferFunction,
        opts: &RenderOpts,
        policy: &ExecPolicy,
        label: &str,
        oracle: &[f32],
    ) {
        let faults = sfc_repro::harness::FaultPlan::none();
        let (img, outcome) =
            volrend::render_with_policy(vol, cam, tf, opts, policy, &faults).unwrap();
        assert!(
            outcome.quality.is_full_quality(),
            "{label}: no-pressure brownout must not downgrade, got {}",
            outcome.quality
        );
        assert!(outcome.output_is_whole(), "{label}: must end whole");
        let got: Vec<f32> = img.pixels().iter().flat_map(|p| [p.r, p.g, p.b, p.a]).collect();
        assert_bits_equal(label, &got, oracle);
    }
    render_case(&va, cam, &tf, &opts, &brownout, "raycast array", &pixel_oracle);
    render_case(
        &va.convert::<ZOrder3>(), cam, &tf, &opts, &brownout,
        "raycast z-order", &pixel_oracle,
    );
    render_case(
        &va.convert::<Tiled3>(), cam, &tf, &opts, &brownout,
        "raycast tiled", &pixel_oracle,
    );
    render_case(
        &va.convert::<HilbertOrder3>(), cam, &tf, &opts, &brownout,
        "raycast hilbert", &pixel_oracle,
    );
}

#[test]
fn hostile_stencil_config_counter_gap_grows_with_stencil_size() {
    // Fig. 2's trend: the Z-order advantage grows with stencil size.
    let dims = Dims3::cube(24);
    let values = datagen::mri_phantom(dims, 9, datagen::PhantomParams::default());
    let a: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();
    let plat = memsim::scaled(&memsim::ivy_bridge(), 14);
    let gap_for = |radius: usize| -> (f64, f64) {
        let p = filters::BilateralParams {
            radius,
            sigma_spatial: 1.0,
            sigma_range: 0.1,
            order: StencilOrder::Zyx,
        };
        let ca = filters::simulate_bilateral_counters(&a, &p, Axis::Z, 2, &plat)
            .l3_total_cache_accesses() as f64;
        let cz = filters::simulate_bilateral_counters(&z, &p, Axis::Z, 2, &plat)
            .l3_total_cache_accesses() as f64;
        (
            sfc_repro::harness::scaled_relative_difference(ca, cz),
            ca - cz,
        )
    };
    let (ds_small, gap_small) = gap_for(1);
    let (ds_large, gap_large) = gap_for(3);
    // In the hostile configuration Z-order must win at every stencil size,
    // and the absolute miss gap must widen with the stencil.
    assert!(ds_small > 0.0, "r1 hostile: z-order must win, ds={ds_small:.2}");
    assert!(ds_large > 0.0, "r3 hostile: z-order must win, ds={ds_large:.2}");
    assert!(
        gap_large > gap_small,
        "absolute miss gap should grow with stencil size: {gap_small} -> {gap_large}"
    );
}
