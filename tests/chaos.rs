//! Chaos suite (DESIGN.md "Degraded-mode semantics"): the full
//! datagen → bilateral → render → checkpoint pipeline runs under
//! randomized fault plans across several seeds. The contract under test:
//! every run terminates (no hang, no abort) in either **bitwise-correct
//! output** or a **typed, readable report** (`RunReport` + `DefectMap`),
//! and no persistent artifact is ever torn — a simulated `kill -9`
//! mid-checkpoint loses at most the record being written and never a
//! completed cell.
//!
//! Seeds default to four fixed values; override with a comma-separated
//! `CHAOS_SEEDS` environment variable (CI runs the default set).

use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

use sfc_bench::Checkpoint;
use sfc_repro::core::{pencil, pencil_count, ArrayOrder3, Dims3, Grid3, ZOrder3};
use sfc_repro::datagen::{load_volume, mri_phantom, save_volume, PhantomParams};
use sfc_repro::filters::{bilateral3d, try_bilateral3d_degraded, BilateralParams, FilterRun};
use sfc_repro::harness::durable::tmp_sibling;
use sfc_repro::harness::{DeadlineBudget, ExecPolicy, FaultPlan, FaultRates, SupervisorConfig};
use sfc_repro::prelude::{Axis, StencilOrder};
use sfc_repro::volrend::{
    render, render_degraded, render_with_policy, Camera, RenderOpts, TransferFunction,
};
use sfc_repro::volrend::{vec3, Projection};

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("CHAOS_SEEDS must be comma-separated integers, got {t:?}"))
            })
            .collect(),
        Err(_) => vec![0xC0FFEE, 0xBAD5EED, 0x0DDB17, 0xFACADE],
    }
}

fn tmp_path(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("sfc_chaos_{}_{tag}_{seed:x}", std::process::id()))
}

/// Aggressive-but-bounded fault rates: with ~100 pencils per run, every
/// seed draws a healthy mix of panics, flakes, stalls, and corruptions.
fn rates() -> FaultRates {
    FaultRates {
        panic: 0.10,
        flaky: 0.15,
        stall: 0.05,
        corrupt: 0.10,
        stall_ms: 100,
    }
}

/// Watchdog below the scripted stall so stalled items genuinely expire.
fn cfg() -> SupervisorConfig {
    SupervisorConfig {
        nthreads: 4,
        max_retries: 1,
        backoff_base: Duration::from_millis(1),
        timeout: Some(Duration::from_millis(50)),
        watchdog_poll: Duration::from_millis(2),
        ..Default::default()
    }
}

#[test]
fn volume_io_is_atomic_under_stale_temps_across_seeds() {
    for seed in chaos_seeds() {
        let dims = Dims3::new(10, 8, 6);
        let values = mri_phantom(dims, seed, PhantomParams::default());
        let path = tmp_path("vol", seed);
        // A stale temp sibling left by a previously killed writer must not
        // confuse (or be confused with) the real artifact.
        std::fs::write(tmp_sibling(&path), b"stale garbage from a dead writer").unwrap();
        save_volume(&path, dims, &values).unwrap();
        assert!(!tmp_sibling(&path).exists(), "seed {seed:#x}: temp must be consumed by rename");
        let (rdims, rvalues) = load_volume(&path).unwrap();
        assert_eq!(rdims, dims);
        assert_eq!(
            rvalues.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "seed {seed:#x}: save/load must be bitwise lossless"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn degraded_bilateral_ends_whole_or_typed_across_seeds() {
    for seed in chaos_seeds() {
        let dims = Dims3::new(10, 9, 8);
        let values = mri_phantom(dims, seed, PhantomParams::default());
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let run = FilterRun {
            params: BilateralParams {
                radius: 1,
                sigma_spatial: 1.0,
                sigma_range: 0.2,
                order: StencilOrder::Xyz,
            },
            pencil_axis: Axis::X,
            weight: Default::default(),
            nthreads: 4,
        };
        let reference: Grid3<f32, ArrayOrder3> = bilateral3d(&grid, &run);
        let n_pencils = pencil_count(dims, run.pencil_axis);
        let plan = FaultPlan::random_rates(seed, n_pencils, &rates());

        let mut out = Grid3::<f32, ArrayOrder3>::new(dims);
        let outcome =
            try_bilateral3d_degraded(&grid, &mut out, &run, &cfg(), &plan, None).unwrap();

        // Contract: the run terminated with a full accounting...
        assert_eq!(
            outcome.report.completed + outcome.report.failed.len(),
            n_pencils,
            "seed {seed:#x}: every pencil accounted"
        );
        // ...and every pencil outside the unrepaired set is bitwise
        // identical to the fault-free reference. (The input is finite and
        // repair disables injection, so in practice the map ends whole.)
        let unrepaired = outcome.defects.unrepaired_units();
        for pid in 0..n_pencils {
            if unrepaired.binary_search(&pid).is_ok() {
                continue;
            }
            for (i, j, k) in pencil(dims, run.pencil_axis, pid).iter() {
                assert_eq!(
                    out.get(i, j, k).to_bits(),
                    reference.get(i, j, k).to_bits(),
                    "seed {seed:#x}: pencil {pid} voxel ({i},{j},{k}) diverged"
                );
            }
        }
        assert!(
            outcome.output_is_whole(),
            "seed {seed:#x}: finite input must repair to whole, got {}",
            outcome.defects
        );
    }
}

#[test]
fn degraded_render_ends_whole_or_typed_across_seeds() {
    for seed in chaos_seeds() {
        let n = 12;
        let dims = Dims3::cube(n);
        let values = mri_phantom(dims, seed, PhantomParams::default());
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let cam = Camera::look_at(
            vec3(n as f32 * 2.5, n as f32 / 2.0, n as f32 / 2.0),
            vec3(n as f32 / 2.0, n as f32 / 2.0, n as f32 / 2.0),
            vec3(0.0, 1.0, 0.0),
            Projection::Perspective {
                fov_y: 40f32.to_radians(),
            },
            32,
            32,
        );
        let tf = TransferFunction::fire();
        let opts = RenderOpts {
            tile: 8, // 4x4 = 16 tiles
            nthreads: 4,
            ..Default::default()
        };
        let reference = render(&grid, &cam, &tf, &opts);
        let ntiles = 16;
        let plan = FaultPlan::random_rates(seed, ntiles, &rates());

        let (img, outcome) =
            render_degraded(&grid, &cam, &tf, &opts, &cfg(), &plan, Some((0.0, 1.0))).unwrap();

        assert_eq!(
            outcome.report.completed + outcome.report.failed.len(),
            ntiles,
            "seed {seed:#x}: every tile accounted"
        );
        assert!(
            outcome.output_is_whole(),
            "seed {seed:#x}: finite input must repair to whole, got {}",
            outcome.defects
        );
        let same = img
            .pixels()
            .iter()
            .zip(reference.pixels())
            .all(|(a, b)| {
                [a.r, a.g, a.b, a.a]
                    .iter()
                    .map(|v| v.to_bits())
                    .eq([b.r, b.g, b.b, b.a].iter().map(|v| v.to_bits()))
            });
        assert!(same, "seed {seed:#x}: whole render must be bitwise identical");
    }
}

#[test]
fn brownout_render_meets_its_deadline_under_a_timeout_storm_across_seeds() {
    // The brownout contract under overload: a timeout storm (30% of tiles
    // stall past the watchdog) must not push the render far past its
    // wall-clock budget. The deadline controller sheds late work, the
    // repair pass fills every shed/failed tile at the deepest quality
    // rung, and the QualityMap names each downgraded tile — output stays
    // whole, just coarser where the storm hit.
    for seed in chaos_seeds() {
        let n = 24;
        let dims = Dims3::cube(n);
        let values = mri_phantom(dims, seed, PhantomParams::default());
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let cam = Camera::look_at(
            vec3(n as f32 * 2.5, n as f32 / 2.0, n as f32 / 2.0),
            vec3(n as f32 / 2.0, n as f32 / 2.0, n as f32 / 2.0),
            vec3(0.0, 1.0, 0.0),
            Projection::Perspective {
                fov_y: 40f32.to_radians(),
            },
            96,
            96,
        );
        let tf = TransferFunction::fire();
        let opts = RenderOpts {
            tile: 8, // 12x12 = 144 tiles
            nthreads: 4,
            ..Default::default()
        };
        let ntiles = 144;
        let storm = FaultRates {
            panic: 0.0,
            flaky: 0.0,
            stall: 0.3,
            corrupt: 0.0,
            stall_ms: 150,
        };
        let plan = FaultPlan::random_rates(seed, ntiles, &storm);
        let budget = Duration::from_millis(400);
        let policy = ExecPolicy::brownout(
            cfg(),
            DeadlineBudget::with_budget(budget),
            Some((0.0, 1.0)),
        );

        let start = std::time::Instant::now();
        let (_img, outcome) =
            render_with_policy(&grid, &cam, &tf, &opts, &policy, &plan).unwrap();
        let wall = start.elapsed();

        // The deadline governs the engine phase: past the budget the
        // queue sheds instead of computing, so the engine may overrun by
        // at most one in-flight watchdog period. The repair pass that
        // follows is deadline-*aware* (it recomputes shed tiles at the
        // deepest, cheapest rung) but is a fixed post-pass, so the whole
        // call gets a looser 2x bound.
        assert!(
            outcome.report.wall_time <= budget.mul_f64(1.25),
            "seed {seed:#x}: the engine phase must respect its budget: \
             {:.0} ms against a {:.0} ms deadline",
            outcome.report.wall_time.as_secs_f64() * 1e3,
            budget.as_secs_f64() * 1e3,
        );
        assert!(
            wall <= budget.mul_f64(2.0),
            "seed {seed:#x}: repair must stay cheap: {:.0} ms total \
             against a {:.0} ms deadline",
            wall.as_secs_f64() * 1e3,
            budget.as_secs_f64() * 1e3,
        );
        assert_eq!(
            outcome.report.completed + outcome.report.failed.len(),
            ntiles,
            "seed {seed:#x}: every tile accounted"
        );
        assert!(
            !outcome.quality.is_empty(),
            "seed {seed:#x}: a timeout storm past the budget must downgrade \
             at least one tile, got {}",
            outcome.quality
        );
        assert!(
            outcome.output_is_whole(),
            "seed {seed:#x}: shed tiles must be repaired (coarse, not missing), got {}",
            outcome.defects
        );
    }
}

#[test]
fn checkpoint_survives_kill_dash_nine_mid_write_across_seeds() {
    for seed in chaos_seeds() {
        let path = tmp_path("ckpt", seed);
        let journal = {
            let mut os = path.clone().into_os_string();
            os.push(".journal");
            PathBuf::from(os)
        };
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&journal).ok();

        // A sweep completes a handful of cells, fsynced into the journal.
        let keys: Vec<String> = (0..10).map(|c| format!("seed{seed:x}|cell{c}")).collect();
        {
            let mut ckpt = Checkpoint::open(&path).unwrap();
            for (c, key) in keys.iter().enumerate() {
                ckpt.record(key, &[c as f64, seed as f64]).unwrap();
            }
            // Process dies here without any shutdown hook: kill -9.
        }
        // The kill interrupted an in-flight append: a torn record tail.
        let mut f = std::fs::OpenOptions::new().append(true).open(&journal).unwrap();
        let garbage_len = 1 + (seed % 11) as usize;
        f.write_all(&vec![0xAB; garbage_len]).unwrap();
        f.sync_all().unwrap();
        drop(f);

        // Next load: torn tail truncated, no completed cell lost.
        let ckpt = Checkpoint::open(&path).unwrap();
        assert!(
            ckpt.recovery().recovered_anything(),
            "seed {seed:#x}: recovery must be reported"
        );
        for (c, key) in keys.iter().enumerate() {
            assert_eq!(
                ckpt.get(key),
                Some(&[c as f64, seed as f64][..]),
                "seed {seed:#x}: completed cell {key} lost"
            );
        }
        assert_eq!(ckpt.len(), keys.len(), "seed {seed:#x}: no phantom cells");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&journal).ok();
    }
}

#[test]
fn nan_input_degrades_with_unrepaired_typed_defects_not_a_crash() {
    // One deliberately unrepairable scenario: NaN-contaminated *input*
    // survives repair (repair re-runs the same kernel on the same data),
    // so the defect map must honestly end non-whole — and nothing panics.
    let seed = chaos_seeds()[0];
    let dims = Dims3::new(8, 6, 5);
    let mut values = mri_phantom(dims, seed, PhantomParams::default());
    values[dims.nx * 2 + 3] = f32::NAN; // poisons pencils near (j=2.., k=0)
    let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
    let run = FilterRun {
        params: BilateralParams {
            radius: 1,
            sigma_spatial: 1.0,
            sigma_range: 0.2,
            order: StencilOrder::Xyz,
        },
        pencil_axis: Axis::X,
        weight: Default::default(),
        nthreads: 2,
    };
    let mut out = Grid3::<f32, ArrayOrder3>::new(dims);
    // The plausibility range flags the NaN-substituted output region even
    // though the kernel itself never emits NaN.
    let outcome = try_bilateral3d_degraded(
        &grid,
        &mut out,
        &run,
        &cfg(),
        &FaultPlan::none(),
        Some((0.0, 1.0)),
    )
    .unwrap();
    // The filter substitutes NaN neighborhoods, so output may be finite;
    // whichever way the scan lands it must be internally consistent.
    if !outcome.output_is_whole() {
        assert!(
            !outcome.defects.unrepaired_units().is_empty(),
            "non-whole outcome must name its unrepaired units"
        );
    }
    assert!(
        out.to_row_major().iter().all(|v| v.is_finite()),
        "NaN must never propagate into committed output"
    );
}

/// Abusive-tenant isolation (DESIGN.md §9): one flooder blasting the
/// service with stalling requests under a timeout storm must be confined
/// by its own queue bound and in-flight quota — refused with typed
/// `overloaded` replies, never crashing the service — while seven
/// well-behaved tenants complete every request whole, across all chaos
/// seeds.
#[test]
fn abusive_tenant_is_quota_limited_while_others_complete_whole() {
    use sfc_server::{RespHeader, SchedConfig, Service, ServiceConfig};

    for seed in chaos_seeds() {
        let svc = Service::start(ServiceConfig {
            exec_threads: 2,
            lanes: 2,
            sched: SchedConfig {
                queue_cap: 2,
                quota: 1,
                quantum: 256,
            },
            // A watchdog well under the flooder's scripted stall, so its
            // stalled units expire fast instead of serializing the test.
            unit_timeout: Duration::from_millis(60),
            ..ServiceConfig::default()
        })
        .unwrap_or_else(|e| panic!("seed {seed:#x}: service start: {e}"));

        // The flooder: 24 stalling requests submitted as fast as the
        // scheduler will take them. quota=1 means at most one holds a
        // lane; queue_cap=2 means at most two wait; the rest must be
        // refused with a typed overload.
        let flooder = {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let mut admitted = Vec::new();
                let mut overloaded = 0usize;
                for r in 0..24u64 {
                    let line = format!(
                        "filter tenant=flood size=6 seed={r} radius=1 \
                         fault_seed={seed} timeout_rate=0.2 stall_ms=50"
                    );
                    let req = sfc_server::Request::parse(&line).expect("valid request");
                    match svc.submit(req) {
                        Ok(t) => admitted.push(t),
                        Err(over) => {
                            assert_eq!(over.reason, "queue-full");
                            assert_eq!(over.tenant, "flood");
                            overloaded += 1;
                        }
                    }
                }
                // Every admitted request resolves with a typed reply —
                // degraded is fine, hanging is not.
                for t in &admitted {
                    let resp = t
                        .wait(Duration::from_secs(60))
                        .expect("admitted flood request resolves");
                    assert!(
                        matches!(resp.header, RespHeader::Ok(_) | RespHeader::Err { .. }),
                        "flood reply must be typed, got {:?}",
                        resp.header
                    );
                }
                overloaded
            })
        };

        // Seven well-behaved tenants, two fault-free requests each,
        // submitted while the flood is in progress.
        let mut calm = Vec::new();
        for tenant in 0..7u64 {
            let svc = svc.clone();
            calm.push(std::thread::spawn(move || {
                for r in 0..2u64 {
                    let line = format!(
                        "filter tenant=calm{tenant} size=8 seed={} radius=1",
                        seed ^ (tenant * 100 + r)
                    );
                    let req = sfc_server::Request::parse(&line).expect("valid request");
                    let t = svc.submit(req).unwrap_or_else(|o| {
                        panic!("well-behaved tenant calm{tenant} refused: {o:?}")
                    });
                    let resp = t
                        .wait(Duration::from_secs(60))
                        .expect("well-behaved request resolves");
                    match resp.header {
                        RespHeader::Ok(h) => {
                            assert!(h.whole, "calm{tenant} request {r} must be whole");
                            assert_eq!(h.failed, 0, "calm{tenant} request {r}: no failures");
                        }
                        other => panic!("calm{tenant} request {r}: expected ok, got {other:?}"),
                    }
                }
            }));
        }

        for h in calm {
            h.join().expect("well-behaved tenant thread");
        }
        let overloaded = flooder.join().expect("flooder thread");
        assert!(
            overloaded > 0,
            "seed {seed:#x}: the flood must trip queue-full at least once"
        );
        let report = svc.drain(Duration::from_secs(30));
        assert!(report.clean, "seed {seed:#x}: post-storm drain is clean: {report:?}");
    }
}
