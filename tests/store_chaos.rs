//! Out-of-core brick-store chaos suite (DESIGN.md §10). Pins the PR's
//! invariants end to end, over the real kernels:
//!
//! 1. With faults off, a `BrickStore` is *transparent*: bilateral
//!    filtering and raycasting over the store produce bitwise-identical
//!    output to the same kernels over the in-memory grid, for all four
//!    SFC layouts.
//! 2. Under seeded IO fault injection (transient errors and in-transit
//!    bit flips), bounded retry still delivers bitwise-correct data —
//!    across at least four seeds (override with `CHAOS_SEEDS`).
//! 3. `scrub()` detects injected on-disk bit rot and read-repair heals
//!    it from the journal, restoring bitwise-exact content.
//! 4. A streaming raycast under a residency budget below a quarter of
//!    the volume completes whole (no defects, no poison), stays inside
//!    the budget, and matches the in-memory render bitwise.

use std::path::PathBuf;

use sfc_repro::core::{ArrayOrder3, Dims3, Grid3, LayoutKind, Volume3, ZOrder3};
use sfc_repro::datagen::{combustion_field, CombustionParams};
use sfc_repro::filters::{try_bilateral3d_with_policy, BilateralParams, FilterRun};
use sfc_repro::harness::faults::{flip_bit, IoFaultPlan, IoFaultRates};
use sfc_repro::harness::{ExecPolicy, FaultPlan};
use sfc_repro::prelude::{Axis, StencilOrder};
use sfc_repro::store::{BrickStore, StoreOptions, DATA_FILE};
use sfc_repro::volrend::{
    render, render_with_policy, vec3, Camera, Projection, RenderOpts, TransferFunction,
};

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim().parse().unwrap_or_else(|_| {
                    panic!("CHAOS_SEEDS must be comma-separated integers, got {t:?}")
                })
            })
            .collect(),
        Err(_) => vec![0xC0FFEE, 0xBAD5EED, 0x0DDB17, 0xFACADE],
    }
}

fn store_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfc_store_chaos_{}_{tag}", std::process::id()))
}

fn test_grid(n: usize, seed: u64) -> Grid3<f32, ZOrder3> {
    let dims = Dims3::cube(n);
    let values = combustion_field(dims, seed, CombustionParams::default());
    Grid3::from_row_major(dims, &values)
}

fn filter_run() -> FilterRun {
    FilterRun {
        params: BilateralParams {
            radius: 1,
            sigma_spatial: 1.0,
            sigma_range: 0.2,
            order: StencilOrder::Xyz,
        },
        pencil_axis: Axis::X,
        weight: Default::default(),
        nthreads: 2,
    }
}

fn camera(n: usize, image: usize) -> Camera {
    let c = n as f32 / 2.0;
    Camera::look_at(
        vec3(n as f32 * 2.5, c * 0.8, c * 1.3),
        vec3(c, c, c),
        vec3(0.0, 1.0, 0.0),
        Projection::Perspective {
            fov_y: 40f32.to_radians(),
        },
        image,
        image,
    )
}

fn assert_images_bitwise(
    a: &sfc_repro::volrend::Image,
    b: &sfc_repro::volrend::Image,
    what: &str,
) {
    assert_eq!(a.pixels().len(), b.pixels().len(), "{what}: image shape");
    let same = a.pixels().iter().zip(b.pixels()).all(|(p, q)| {
        [p.r, p.g, p.b, p.a]
            .iter()
            .map(|v| v.to_bits())
            .eq([q.r, q.g, q.b, q.a].iter().map(|v| v.to_bits()))
    });
    assert!(same, "{what}: renders must be bitwise identical");
}

fn assert_store_bitwise(store: &BrickStore, reference: &impl Volume3, what: &str) {
    let dims = reference.dims();
    let mut got = vec![0.0f32; dims.nx];
    let mut want = vec![0.0f32; dims.nx];
    for k in 0..dims.nz {
        for j in 0..dims.ny {
            store.gather_axis_run(0, j, k, Axis::X, &mut got);
            reference.gather_axis_run(0, j, k, Axis::X, &mut want);
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{what}: voxel ({i},{j},{k}) reads {a} want {b}"
                );
            }
        }
    }
}

/// Invariant 1 — the pinned transparency contract: with faults off, the
/// brick store is indistinguishable from the in-memory volume to both
/// kernels, for every on-disk SFC ordering.
#[test]
fn faultless_store_is_bitwise_transparent_to_both_kernels_across_layouts() {
    let n = 16;
    let grid = test_grid(n, 11);
    let run = filter_run();
    let cam = camera(n, 24);
    let tf = TransferFunction::fire();
    let ropts = RenderOpts {
        nthreads: 2,
        ..Default::default()
    };

    // References computed once from the in-memory grid.
    let mut want_filter = Grid3::<f32, ArrayOrder3>::new(grid.dims());
    try_bilateral3d_with_policy(&grid, &mut want_filter, &run, &ExecPolicy::Plain, &FaultPlan::none())
        .expect("reference bilateral");
    let (want_img, _) = render_with_policy(
        &grid,
        &cam,
        &tf,
        &ropts,
        &ExecPolicy::Plain,
        &FaultPlan::none(),
    )
    .expect("reference render");

    for kind in LayoutKind::ALL {
        let dir = store_dir(&format!("transparent_{}", kind.name()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = BrickStore::import(&dir, &grid, 8, kind, StoreOptions::default())
            .expect("import");

        let mut got_filter = Grid3::<f32, ArrayOrder3>::new(grid.dims());
        let outcome = try_bilateral3d_with_policy(
            &store,
            &mut got_filter,
            &run,
            &ExecPolicy::Plain,
            &FaultPlan::none(),
        )
        .expect("bilateral over the store");
        assert!(outcome.output_is_whole(), "{}: filter must end whole", kind.name());
        for k in 0..grid.dims().nz {
            for j in 0..grid.dims().ny {
                for i in 0..grid.dims().nx {
                    assert_eq!(
                        got_filter.get(i, j, k).to_bits(),
                        want_filter.get(i, j, k).to_bits(),
                        "{}: bilateral voxel ({i},{j},{k}) diverged",
                        kind.name()
                    );
                }
            }
        }

        let (got_img, outcome) = render_with_policy(
            &store,
            &cam,
            &tf,
            &ropts,
            &ExecPolicy::Plain,
            &FaultPlan::none(),
        )
        .expect("render over the store");
        assert!(outcome.output_is_whole(), "{}: render must end whole", kind.name());
        assert_images_bitwise(&got_img, &want_img, kind.name());

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Invariant 2 — transient IO faults on the read path (errors and
/// in-transit bit flips) are absorbed by bounded retry, bitwise intact,
/// across every chaos seed.
#[test]
fn seeded_io_faults_on_reads_never_corrupt_delivered_data() {
    let n = 16;
    let grid = test_grid(n, 23);
    let dir = store_dir("io_chaos");
    let _ = std::fs::remove_dir_all(&dir);
    BrickStore::import(&dir, &grid, 8, LayoutKind::Hilbert, StoreOptions::default())
        .expect("import");

    let seeds = chaos_seeds();
    assert!(seeds.len() >= 4, "chaos sweep needs at least 4 seeds");
    for seed in seeds {
        let rates = IoFaultRates {
            io_error: 0.08,
            bit_flip: 0.08,
            ..IoFaultRates::default()
        };
        let plan = IoFaultPlan::random(seed, rates);
        // A two-brick budget forces continual re-reads from disk, so the
        // fault plan gets enough operations to fire on every seed.
        let opts = StoreOptions::default()
            .with_budget(2 * 8 * 8 * 8 * 4)
            .with_faults(plan.clone());
        let store = BrickStore::open(&dir, opts).expect("open retries past injected faults");
        assert_store_bitwise(&store, &grid, &format!("seed {seed:#x}"));
        assert_store_bitwise(&store, &grid, &format!("seed {seed:#x}, second pass"));
        let stats = store.stats();
        assert_eq!(stats.poisoned, 0, "seed {seed:#x}: nothing may degrade to poison");
        assert!(
            plan.injected() > 0,
            "seed {seed:#x}: the sweep must actually inject faults to mean anything"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Invariant 3 — scrub detects injected on-disk rot and read-repair
/// heals it from the journal, end to end.
#[test]
fn scrub_detects_and_read_repair_heals_on_disk_bit_rot() {
    let n = 16;
    let grid = test_grid(n, 37);
    let dir = store_dir("bitrot");
    let _ = std::fs::remove_dir_all(&dir);
    let store = BrickStore::import(&dir, &grid, 8, LayoutKind::ZOrder, StoreOptions::default())
        .expect("import");
    let nbricks = store.geom().brick_count();
    drop(store);

    // Rot three distinct bricks: one byte each in slots 0, middle, last.
    let slot = 8 * 8 * 8 * 4usize;
    let data = dir.join(DATA_FILE);
    for (i, off) in [7usize, (nbricks / 2) * slot + 100, (nbricks - 1) * slot + slot - 1]
        .into_iter()
        .enumerate()
    {
        flip_bit(&data, off as u64, (i % 8) as u8).expect("inject rot");
    }

    let store = BrickStore::open(&dir, StoreOptions::default()).expect("open");
    let report = store.scrub();
    assert_eq!(report.scanned, nbricks, "scrub visits every brick");
    assert_eq!(report.repaired, 3, "all three rotted bricks repaired: {report:?}");
    assert!(report.unrecoverable.is_empty(), "journal copies make rot recoverable");

    // The repair is durable: a second scrub is clean and the content is
    // bitwise back.
    let report = store.scrub();
    assert_eq!(report.clean, nbricks, "second scrub finds no residual rot: {report:?}");
    assert_store_bitwise(&store, &grid, "after repair");
    std::fs::remove_dir_all(&dir).ok();
}

/// Invariant 4 — a raycast under a residency budget below a quarter of
/// the volume, with transient read faults injected, completes whole with
/// bounded retries and matches the in-memory render bitwise.
#[test]
fn streaming_raycast_under_quarter_budget_completes_whole() {
    let n = 24;
    let grid = test_grid(n, 41);
    let dir = store_dir("streaming");
    let _ = std::fs::remove_dir_all(&dir);

    let volume_bytes = grid.dims().len() * 4;
    let budget = volume_bytes / 5; // comfortably under the quarter bound
    BrickStore::import(&dir, &grid, 8, LayoutKind::ZOrder, StoreOptions::default())
        .expect("import");
    let rates = IoFaultRates {
        io_error: 0.05,
        bit_flip: 0.05,
        ..IoFaultRates::default()
    };
    let store = BrickStore::open(
        &dir,
        StoreOptions::default()
            .with_budget(budget)
            .with_faults(IoFaultPlan::random(0x5eed, rates)),
    )
    .expect("open under budget");

    let cam = camera(n, 32);
    let tf = TransferFunction::fire();
    let ropts = RenderOpts {
        nthreads: 2,
        ..Default::default()
    };
    let (got, outcome) = render_with_policy(
        &store,
        &cam,
        &tf,
        &ropts,
        &ExecPolicy::Plain,
        &FaultPlan::none(),
    )
    .expect("streaming render");
    assert!(outcome.output_is_whole(), "streaming render must end whole");

    let want = render(&grid, &cam, &tf, &ropts);
    assert_images_bitwise(&got, &want, "streaming vs in-memory");

    let stats = store.stats();
    assert!(
        store.resident_bytes() <= budget,
        "residency {} exceeds the {} byte budget",
        store.resident_bytes(),
        budget
    );
    assert!(stats.evictions > 0, "a sub-quarter budget must actually evict");
    assert_eq!(stats.poisoned, 0, "transient faults must never poison");
    assert!(
        store.defective_bricks().is_empty(),
        "no defects under transient-only faults"
    );
    std::fs::remove_dir_all(&dir).ok();
}
