//! Integration tests for the extension features layered over the paper's
//! core reproduction: runtime layout dispatch, TLB modeling, gradient-lit
//! rendering, separable convolution, and locality statistics.

use sfc_repro::prelude::*;
use sfc_repro::{datagen, filters, memsim, volrend};
use sfc_core::DynGrid3;

#[test]
fn dyn_grid_feeds_kernels_like_static_grids() {
    let dims = Dims3::cube(16);
    let values = datagen::combustion_field(dims, 5, datagen::CombustionParams::default());
    let stat: Grid3<f32, ZOrder3> = Grid3::from_row_major(dims, &values);
    let dynamic = DynGrid3::from_row_major(LayoutKind::ZOrder, dims, &values);

    // The raycaster accepts either through Volume3.
    let cam = volrend::orbit_viewpoints(
        8,
        volrend::vec3(8.0, 8.0, 8.0),
        40.0,
        Projection::Perspective {
            fov_y: 40f32.to_radians(),
        },
        24,
        24,
    )
    .remove(2);
    let tf = TransferFunction::fire();
    let opts = RenderOpts::default();
    let a = volrend::render(&stat, &cam, &tf, &opts);
    let b = volrend::render(&dynamic, &cam, &tf, &opts);
    assert_eq!(a.pixels(), b.pixels());
}

#[test]
fn dyn_grid_all_kinds_render_identically() {
    let dims = Dims3::cube(12);
    let values = datagen::patterns::radial_gradient(dims);
    let cam = volrend::orbit_viewpoints(
        8,
        volrend::vec3(6.0, 6.0, 6.0),
        30.0,
        Projection::Perspective {
            fov_y: 40f32.to_radians(),
        },
        16,
        16,
    )
    .remove(1);
    let tf = TransferFunction::grayscale();
    let opts = RenderOpts::default();
    let reference = volrend::render(
        &DynGrid3::from_row_major(LayoutKind::ArrayOrder, dims, &values),
        &cam,
        &tf,
        &opts,
    );
    for kind in [LayoutKind::ZOrder, LayoutKind::Tiled, LayoutKind::Hilbert] {
        let img = volrend::render(
            &DynGrid3::from_row_major(kind, dims, &values),
            &cam,
            &tf,
            &opts,
        );
        assert_eq!(reference.pixels(), img.pixels(), "{kind}");
    }
}

#[test]
fn tlb_model_penalizes_hostile_array_order_strides() {
    // A z-direction walk through an array-order 64^3 volume strides 16 KB
    // per step — a new page every 4 steps; z-order revisits pages.
    use sfc_memsim::{CoreSim, HierarchyConfig, TlbConfig, TracedGrid};
    let dims = Dims3::cube(64);
    let values = datagen::patterns::ramp(dims);
    let a: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();
    let base = memsim::scaled(&memsim::ivy_bridge(), 3).hierarchy;
    let hier = HierarchyConfig {
        tlb: Some(TlbConfig {
            entries: 16,
            page_bytes: 4096,
        }),
        ..base
    };
    // Walk the whole volume with k (the array-order-hostile axis) innermost.
    fn z_walk<V: Volume3>(vol: &V) {
        for i in 0..64 {
            for j in 0..64 {
                for k in 0..64 {
                    std::hint::black_box(vol.get(i, j, k));
                }
            }
        }
    }
    let mut sim_a = CoreSim::new(&hier);
    z_walk(&TracedGrid::at_zero(&a, &mut sim_a));
    let mut sim_z = CoreSim::new(&hier);
    z_walk(&TracedGrid::at_zero(&z, &mut sim_z));
    let tlb_a = sim_a.counters().tlb.misses;
    let tlb_z = sim_z.counters().tlb.misses;
    assert!(
        tlb_a > tlb_z * 4,
        "array-order z-walk must thrash the TLB: a={tlb_a} z={tlb_z}"
    );
}

#[test]
fn lit_and_flat_renders_differ_but_share_geometry() {
    let dims = Dims3::cube(16);
    let values = datagen::patterns::sphere(dims, 4.0);
    let g: Grid3<f32, ZOrder3> = Grid3::from_row_major(dims, &values);
    let cam = volrend::orbit_viewpoints(
        8,
        volrend::vec3(8.0, 8.0, 8.0),
        40.0,
        Projection::Perspective {
            fov_y: 40f32.to_radians(),
        },
        32,
        32,
    )
    .remove(0);
    let tf = TransferFunction::grayscale();
    let opts = RenderOpts {
        nthreads: 2,
        ..Default::default()
    };
    let flat = volrend::render(&g, &cam, &tf, &opts);
    let lit = volrend::render_lit(&g, &cam, &tf, &opts, &volrend::Light::default());
    // Same silhouette: alpha is shading-independent.
    for (f, l) in flat.pixels().iter().zip(lit.pixels()) {
        assert!((f.a - l.a).abs() < 1e-6);
    }
    // But the color content differs where the sphere is visible.
    let differs = flat
        .pixels()
        .iter()
        .zip(lit.pixels())
        .any(|(f, l)| (f.r - l.r).abs() > 1e-3);
    assert!(differs, "lighting must change shading");
}

#[test]
fn separable_blur_then_gradient_pipeline() {
    // A realistic preprocessing chain: blur, then gradient magnitude —
    // all layout-generic.
    let dims = Dims3::cube(16);
    let noisy = datagen::mri_phantom(dims, 8, datagen::PhantomParams::default());
    let g: Grid3<f32, Tiled3> = Grid3::from_row_major(dims, &noisy);
    let blurred = filters::gaussian_separable3d(&g, 2, 1.5, 2);
    let run = filters::FilterRun {
        params: filters::BilateralParams::for_size(StencilSize::R1, StencilOrder::Xyz),
        pencil_axis: Axis::X,
        weight: Default::default(),
        nthreads: 2,
    };
    let grad: Grid3<f32, Tiled3> = filters::gradient3d(&blurred, &run);
    // Blurring must reduce total gradient energy vs the raw volume.
    let raw_grad: Grid3<f32, Tiled3> = filters::gradient3d(&g, &run);
    let energy = |x: &Grid3<f32, Tiled3>| x.to_row_major().iter().map(|v| v * v).sum::<f32>();
    assert!(energy(&grad) < energy(&raw_grad));
}

#[test]
fn locality_stats_predict_simulated_misses() {
    // The analytic anisotropy metric and the cache simulator must agree
    // on the ordering: a-order ≫ tiled > z-order ≈ hilbert.
    let dims = Dims3::cube(32);
    let a = sfc_core::anisotropy(&<ArrayOrder3 as Layout3>::new(dims), 16);
    let z = sfc_core::anisotropy(&<ZOrder3 as Layout3>::new(dims), 16);
    let h = sfc_core::anisotropy(&<HilbertOrder3 as Layout3>::new(dims), 16);
    assert!(a > 100.0 * z.min(h), "a-order {a} vs z {z} / h {h}");
}
