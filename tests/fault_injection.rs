//! Fault-injection acceptance suite (DESIGN.md "Error handling & fault
//! tolerance"): every injected failure — worker panic, hung item, truncated
//! or bit-flipped volume file, NaN-contaminated data — must surface as a
//! typed error or a degraded-but-reported result. Nothing may hang or abort
//! the process.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use sfc_repro::core::{ArrayOrder3, Dims3, Grid3, SfcError, StencilOrder, ZOrder3};
use sfc_repro::datagen::{load_volume, mri_phantom, save_volume, PhantomParams};
use sfc_repro::filters::{bilateral3d, BilateralParams, FilterRun};
use sfc_repro::harness::faults::{contaminate_nan, flip_bit, truncate_file};
use sfc_repro::harness::{
    run_items_supervised, FaultPlan, Schedule, SupervisorConfig,
};
use sfc_repro::prelude::Axis;

fn tmp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfc_fault_{}_{tag}.sfcv", std::process::id()))
}

fn cfg(timeout_ms: Option<u64>) -> SupervisorConfig {
    SupervisorConfig {
        nthreads: 4,
        schedule: Schedule::Dynamic,
        timeout: timeout_ms.map(Duration::from_millis),
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        watchdog_poll: Duration::from_millis(2),
        ..SupervisorConfig::default()
    }
}

#[test]
fn injected_panic_surfaces_as_worker_panic_in_the_report() {
    let report = run_items_supervised(&cfg(None), 16, |_tid, item| {
        if item == 5 {
            panic!("injected fault: boom on item {item}");
        }
        Ok(())
    });
    assert_eq!(report.completed, 15);
    assert_eq!(report.failed.len(), 1);
    let f = &report.failed[0];
    assert_eq!(f.item, 5);
    match &f.error {
        SfcError::WorkerPanic { payload, .. } => {
            assert!(payload.contains("boom"), "payload carries the panic message: {payload}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
}

#[test]
fn hung_item_times_out_without_deadlocking_the_run() {
    let report = run_items_supervised(&cfg(Some(25)), 12, |_tid, item| {
        if item == 7 {
            // Wedged (but finite, so the test process can join it).
            std::thread::sleep(Duration::from_millis(250));
        }
        Ok(())
    });
    assert_eq!(report.completed + report.failed.len(), 12, "every item accounted");
    let timed_out: Vec<_> = report
        .failed
        .iter()
        .filter(|f| matches!(f.error, SfcError::Timeout { .. }))
        .collect();
    assert!(
        !timed_out.is_empty() && timed_out.iter().all(|f| f.item == 7),
        "only the hung item may time out: {:?}",
        report.failed
    );
}

#[test]
fn truncated_volume_file_is_a_typed_corrupt_error() {
    let path = tmp_file("truncated");
    let dims = Dims3::new(6, 5, 4);
    let values = mri_phantom(dims, 11, PhantomParams::default());
    save_volume(&path, dims, &values).unwrap();
    truncate_file(&path, 64).unwrap();
    match load_volume(&path) {
        Err(SfcError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt for truncated file, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bit_flipped_volume_file_fails_its_checksum() {
    let path = tmp_file("bitflip");
    let dims = Dims3::new(6, 5, 4);
    let values = mri_phantom(dims, 13, PhantomParams::default());
    save_volume(&path, dims, &values).unwrap();
    // Flip one payload bit well past the 40-byte header.
    flip_bit(&path, 40 + 17, 3).unwrap();
    match load_volume(&path) {
        Err(SfcError::Corrupt { reason, .. }) => {
            assert!(
                reason.contains("checksum"),
                "corruption should be detected by checksum: {reason}"
            );
        }
        other => panic!("expected checksum Corrupt, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn nan_contaminated_volume_filters_to_finite_output_and_is_counted() {
    let dims = Dims3::cube(12);
    let mut values = mri_phantom(dims, 17, PhantomParams::default());
    let injected = contaminate_nan(&mut values, 23, 0.02);
    assert!(injected > 0);

    let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
    let run = FilterRun {
        params: BilateralParams {
            radius: 1,
            sigma_spatial: 1.0,
            sigma_range: 0.2,
            order: StencilOrder::Xyz,
        },
        pencil_axis: Axis::X,
        weight: Default::default(),
        nthreads: 4,
    };
    let before = sfc_repro::filters::nan_events();
    let out: Grid3<f32, ArrayOrder3> = bilateral3d(&grid, &run);
    let after = sfc_repro::filters::nan_events();
    assert!(after > before, "NaN handling must be observable in counters");
    assert!(
        out.to_row_major().iter().all(|v| v.is_finite()),
        "no NaN may survive into the filtered volume"
    );
}

#[test]
fn nan_contaminated_volume_renders_to_finite_samples_and_is_counted() {
    use sfc_repro::volrend::{sample_trilinear, vec3};
    let dims = Dims3::cube(8);
    let mut values = mri_phantom(dims, 19, PhantomParams::default());
    contaminate_nan(&mut values, 29, 0.05);
    let grid = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);

    let before = sfc_repro::volrend::nan_samples();
    let mut all_finite = true;
    for i in 0..8 {
        for j in 0..8 {
            for k in 0..8 {
                let s = sample_trilinear(
                    &grid,
                    vec3(i as f32 + 0.5, j as f32 + 0.5, k as f32 + 0.5),
                );
                all_finite &= s.is_finite();
            }
        }
    }
    let after = sfc_repro::volrend::nan_samples();
    assert!(all_finite, "sampler must substitute NaN voxels");
    assert!(after > before, "substitutions must be counted");
}

#[test]
fn randomized_fault_plans_preserve_exactly_once_completion() {
    for seed in [0x6001u64, 0x6002, 0x6003, 0x6004] {
        let nitems = 48;
        let plan = FaultPlan::random(seed, nitems, 0.10, 0.20);
        let doomed = plan.doomed_items();
        let completions: Vec<AtomicU32> = (0..nitems).map(|_| AtomicU32::new(0)).collect();

        let report = run_items_supervised(&cfg(None), nitems, |_tid, item| {
            plan.fire(item)?;
            completions[item].fetch_add(1, Ordering::SeqCst);
            Ok(())
        });

        assert_eq!(
            report.completed + report.failed.len(),
            nitems,
            "seed {seed:#x}: every item accounted exactly once"
        );
        let failed_items: Vec<usize> = report.failed.iter().map(|f| f.item).collect();
        assert_eq!(
            failed_items, doomed,
            "seed {seed:#x}: exactly the doomed items fail"
        );
        for (item, count) in completions.iter().enumerate() {
            let n = count.load(Ordering::SeqCst);
            if doomed.contains(&item) {
                assert_eq!(n, 0, "seed {seed:#x}: doomed item {item} must never complete");
            } else {
                assert_eq!(n, 1, "seed {seed:#x}: item {item} completed {n} times");
            }
        }
        if plan.len() > doomed.len() {
            assert!(
                report.retried > 0,
                "seed {seed:#x}: flaky items must be retried"
            );
        }
    }
}
