//! Service conformance suite (DESIGN.md §9): the multi-tenant TCP
//! volume service must be a *transparent* wrapper over the engine.
//!
//! The pinned invariant: a single-tenant request with no deadline
//! pressure and faults off returns bytes bitwise-identical to calling
//! the kernel driver directly with `ExecPolicy::Plain` — for both
//! bilateral and raycast, across all four memory layouts. Everything the
//! service adds (scheduler, cache, brownout stack, TCP framing) must be
//! invisible on the happy path.
//!
//! The lifecycle legs: a client disconnect cancels in-flight units
//! within the reaper/watchdog interval; a `shutdown` drains gracefully —
//! in-flight requests finish and the drain reports clean within budget.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sfc_repro::core::{ArrayOrder3, Dims3, Grid3, HilbertOrder3, Layout3, Tiled3, ZOrder3};
use sfc_repro::datagen::{mri_phantom, PhantomParams};
use sfc_repro::filters::try_bilateral3d_with_policy;
use sfc_repro::harness::{ExecPolicy, FaultPlan};
use sfc_repro::volrend::render_with_policy;
use sfc_server::{
    filter_run, image_bytes, render_setup, f32_bytes, Client, LayoutChoice, RespHeader,
    SchedConfig, Server, ServerConfig, Service, ServiceConfig,
};

const EXEC_THREADS: usize = 2;

/// Start a service + TCP front end on an ephemeral port. Returns the
/// service handle (for lifecycle assertions), the bound address, and the
/// running server's shutdown flag + join handle.
fn start_server(
    svc_cfg: ServiceConfig,
) -> (
    Arc<Service>,
    String,
    Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    let svc = Service::start(svc_cfg).expect("service starts");
    let server = Server::bind("127.0.0.1:0", svc.clone(), ServerConfig::default())
        .expect("ephemeral bind");
    let addr = server.local_addr().expect("bound addr").to_string();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || {
        server.run().expect("accept loop");
    });
    (svc, addr, flag, handle)
}

fn stop_server(
    svc: &Arc<Service>,
    flag: &Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<()>,
) {
    flag.store(true, std::sync::atomic::Ordering::Relaxed);
    handle.join().expect("accept loop exits");
    svc.drain(Duration::from_secs(10));
}

fn plain_filter_bytes<L: Layout3 + Sync>(size: usize, seed: u64, radius: usize) -> Vec<u8>
where
    Grid3<f32, L>: Sync,
{
    let dims = Dims3::cube(size);
    let values = mri_phantom(dims, seed, PhantomParams::default());
    let grid = Grid3::<f32, L>::from_row_major(dims, &values);
    let mut out = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &vec![0.0; dims.len()]);
    let run = filter_run(radius, EXEC_THREADS);
    try_bilateral3d_with_policy(&grid, &mut out, &run, &ExecPolicy::Plain, &FaultPlan::none())
        .expect("plain filter");
    f32_bytes(&out.to_row_major())
}

fn plain_render_bytes<L: Layout3 + Sync>(size: usize, seed: u64, image: usize, tile: usize) -> Vec<u8>
where
    Grid3<f32, L>: Sync,
{
    let dims = Dims3::cube(size);
    let values = mri_phantom(dims, seed, PhantomParams::default());
    let grid = Grid3::<f32, L>::from_row_major(dims, &values);
    let (cam, tf, opts) = render_setup(size, image, tile, EXEC_THREADS);
    let (img, _) =
        render_with_policy(&grid, &cam, &tf, &opts, &ExecPolicy::Plain, &FaultPlan::none())
            .expect("plain render");
    image_bytes(&img)
}

#[test]
fn server_bytes_match_plain_engine_bitwise_across_layouts() {
    let (svc, addr, flag, handle) = start_server(ServiceConfig {
        exec_threads: EXEC_THREADS,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    client.set_timeout(Duration::from_secs(120)).expect("timeout");

    let (size, seed, radius) = (10, 42u64, 2);
    let (image, tile) = (16, 8);
    for layout in LayoutChoice::ALL {
        let name = layout.name();

        let expected = match layout {
            LayoutChoice::Array => plain_filter_bytes::<ArrayOrder3>(size, seed, radius),
            LayoutChoice::Z => plain_filter_bytes::<ZOrder3>(size, seed, radius),
            LayoutChoice::Tiled => plain_filter_bytes::<Tiled3>(size, seed, radius),
            LayoutChoice::Hilbert => plain_filter_bytes::<HilbertOrder3>(size, seed, radius),
        };
        let line = format!("filter tenant=conform size={size} seed={seed} radius={radius} layout={name}");
        let (header, body) = client.request_line(&line).expect("filter reply");
        match header {
            RespHeader::Ok(h) => {
                assert!(h.whole, "{name}: fault-free filter must be whole");
                assert_eq!(h.downgraded, 0, "{name}: no quality downgrades");
                assert_eq!(h.failed, 0, "{name}: no failures");
            }
            other => panic!("{name}: expected ok, got {other:?}"),
        }
        assert_eq!(body, expected, "{name}: filter bytes differ from ExecPolicy::Plain");

        let expected = match layout {
            LayoutChoice::Array => plain_render_bytes::<ArrayOrder3>(size, seed, image, tile),
            LayoutChoice::Z => plain_render_bytes::<ZOrder3>(size, seed, image, tile),
            LayoutChoice::Tiled => plain_render_bytes::<Tiled3>(size, seed, image, tile),
            LayoutChoice::Hilbert => plain_render_bytes::<HilbertOrder3>(size, seed, image, tile),
        };
        let line =
            format!("render tenant=conform size={size} seed={seed} image={image} tile={tile} layout={name}");
        let (header, body) = client.request_line(&line).expect("render reply");
        match header {
            RespHeader::Ok(h) => assert!(h.whole, "{name}: fault-free render must be whole"),
            other => panic!("{name}: expected ok, got {other:?}"),
        }
        assert_eq!(body, expected, "{name}: render bytes differ from ExecPolicy::Plain");
    }
    stop_server(&svc, &flag, handle);
}

#[test]
fn malformed_requests_get_typed_errors_and_ping_pongs() {
    let (svc, addr, flag, handle) = start_server(ServiceConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    client.set_timeout(Duration::from_secs(30)).expect("timeout");

    assert_eq!(client.send_line("ping").expect("ping"), "pong");

    for bad in [
        "transmogrify tenant=a",
        "filter size=8",              // no tenant
        "filter tenant=a size=0",     // invalid size
        "filter tenant=a radius=99",  // radius >= size
        "filter tenant=a bogus=1",    // unknown key
    ] {
        let (header, body) = client.request_line(bad).expect("reply");
        match header {
            RespHeader::Err { kind, .. } => {
                assert_eq!(kind, "invalid-parameter", "line {bad:?}");
            }
            other => panic!("{bad:?}: expected err, got {other:?}"),
        }
        assert!(body.is_empty());
        // The connection survives a rejected request.
        assert_eq!(client.send_line("ping").expect("ping"), "pong");
    }

    let stats = client.send_line("stats").expect("stats");
    assert!(stats.starts_with("stats "), "got {stats:?}");
    stop_server(&svc, &flag, handle);
}

#[test]
fn backpressure_returns_typed_overloaded_over_tcp() {
    // One lane, a queue bound of one, and stalling work: the first
    // request executes, the second queues, the third must be refused.
    let (svc, addr, flag, handle) = start_server(ServiceConfig {
        exec_threads: EXEC_THREADS,
        lanes: 1,
        sched: SchedConfig {
            queue_cap: 1,
            quota: 1,
            quantum: 4096,
        },
        ..ServiceConfig::default()
    });
    let slow = "filter tenant=hog size=12 seed=__ radius=1 fault_seed=1 timeout_rate=1.0 stall_ms=100";
    let mut first = TcpStream::connect(&addr).expect("conn 1");
    first
        .write_all(format!("{}\n", slow.replace("__", "1")).as_bytes())
        .expect("send 1");
    std::thread::sleep(Duration::from_millis(100)); // let it reach the lane
    let mut second = TcpStream::connect(&addr).expect("conn 2");
    second
        .write_all(format!("{}\n", slow.replace("__", "2")).as_bytes())
        .expect("send 2");
    std::thread::sleep(Duration::from_millis(100)); // let it queue

    let mut third = Client::connect(&addr).expect("conn 3");
    third.set_timeout(Duration::from_secs(30)).expect("timeout");
    let (header, _) = third
        .request_line(&slow.replace("__", "3"))
        .expect("reply 3");
    match header {
        RespHeader::Overloaded { tenant, reason, queued, limit } => {
            assert_eq!(tenant, "hog");
            assert_eq!(reason, "queue-full");
            assert_eq!((queued, limit), (1, 1));
        }
        other => panic!("expected overloaded, got {other:?}"),
    }
    // Dropping the first two connections cancels their requests so the
    // drain below is quick.
    drop(first);
    drop(second);
    stop_server(&svc, &flag, handle);
}

#[test]
fn client_disconnect_cancels_inflight_work_within_the_watchdog_interval() {
    let (svc, addr, flag, handle) = start_server(ServiceConfig {
        exec_threads: EXEC_THREADS,
        lanes: 1,
        ..ServiceConfig::default()
    });
    // Every unit stalls 100ms and the watchdog expires it at 250ms; with
    // 144 units, two threads, and one retry the uncancelled run needs
    // tens of seconds. A prompt cancel finishes orders of magnitude
    // sooner: only the in-flight units run out their watchdog, the rest
    // are accounted Cancelled without running, and the faults-off repair
    // pass recomputes them in milliseconds.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"filter tenant=ghost size=12 seed=5 radius=1 fault_seed=9 timeout_rate=1.0 stall_ms=100\n")
        .expect("send");
    // Wait until the request is actually executing, then vanish.
    let start = Instant::now();
    while svc.active_requests() == 0 && start.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(svc.active_requests(), 1, "request reached a lane");
    drop(stream);

    let disconnect = Instant::now();
    while svc.active_requests() > 0 && disconnect.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(5));
    }
    let elapsed = disconnect.elapsed();
    assert_eq!(svc.active_requests(), 0, "abandoned run was reaped");
    assert!(
        elapsed < Duration::from_secs(5),
        "cancellation took {elapsed:?}; an uncancelled run needs tens of seconds"
    );
    stop_server(&svc, &flag, handle);
}

#[test]
fn shutdown_drains_gracefully_and_inflight_requests_finish() {
    let (svc, addr, _flag, handle) = start_server(ServiceConfig {
        exec_threads: EXEC_THREADS,
        ..ServiceConfig::default()
    });
    // A fault-free request that takes real work: submitted just before
    // shutdown, it must still complete (whole) inside the drain budget.
    let waiter = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.set_timeout(Duration::from_secs(60)).expect("timeout");
            client
                .request_line("filter tenant=last size=14 seed=3 radius=2")
                .expect("reply")
        }
    });
    std::thread::sleep(Duration::from_millis(50)); // let it submit

    let mut admin = Client::connect(&addr).expect("admin connect");
    assert_eq!(admin.send_line("shutdown").expect("verb"), "ok draining");
    handle.join().expect("accept loop exits");

    let t0 = Instant::now();
    let report = svc.drain(Duration::from_secs(30));
    assert!(t0.elapsed() < Duration::from_secs(30), "drain within budget");
    assert!(report.clean, "nothing shed or cancelled: {report:?}");

    let (header, body) = waiter.join().expect("client thread");
    match header {
        RespHeader::Ok(h) => {
            assert!(h.whole, "in-flight request finished whole");
            assert_eq!(body.len(), h.bytes);
        }
        other => panic!("expected ok, got {other:?}"),
    }

    // Draining service refuses new connections' requests; the listener
    // itself is closed, so connects fail outright.
    assert!(
        TcpStream::connect(&addr)
            .map(|_| ())
            .is_err(),
        "listener closed after shutdown"
    );
}

/// Parse a `stats key=value ...` line into ordered (key, value) pairs.
fn parse_stats_line(line: &str) -> Vec<(String, i64)> {
    let rest = line.strip_prefix("stats ").expect("stats prefix");
    rest.split_whitespace()
        .map(|kv| {
            let (k, v) = kv.split_once('=').expect("key=value");
            (k.to_string(), v.parse::<i64>().expect("integer value"))
        })
        .collect()
}

#[test]
fn stats_line_pins_every_preexisting_key_with_identical_semantics() {
    // Regression pin for the registry-backed stats_line: the exact key
    // set, order, and per-key semantics of the original hand-formatted
    // line must survive the refactor.
    let svc = Service::start(ServiceConfig::default()).expect("service starts");
    let ask = || {
        let req = sfc_server::Request::parse("filter tenant=t size=8 seed=11 radius=1")
            .expect("valid");
        let t = svc.submit(req).expect("admitted");
        t.wait(Duration::from_secs(30)).expect("reply in time")
    };
    ask(); // cache miss
    ask(); // identical request: cache hit
    // Quiesce: both requests delivered, nothing active.
    let t0 = Instant::now();
    while svc.active_requests() > 0 && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(2));
    }

    let pairs = parse_stats_line(&svc.stats_line());
    let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "submitted",
            "served",
            "coalesced",
            "overloaded",
            "shed",
            "abandoned",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "resident_bytes",
            "active",
            "panics",
            "spills",
            "spill_hits",
            "spill_corrupt",
        ],
        "stats_line key set/order changed"
    );
    let get = |k: &str| pairs.iter().find(|(key, _)| key == k).expect("key present").1;
    assert_eq!(get("submitted"), 2, "two requests were admitted");
    assert_eq!(get("served"), 2, "both executed");
    assert_eq!(get("coalesced"), 0);
    assert_eq!(get("overloaded"), 0);
    assert_eq!(get("shed"), 0);
    assert_eq!(get("abandoned"), 0);
    assert_eq!(get("cache_hits"), 1, "second identical request hits");
    assert_eq!(get("cache_misses"), 1, "first request misses");
    assert_eq!(get("cache_evictions"), 0);
    assert_eq!(get("resident_bytes"), 8 * 8 * 8 * 4, "one resident 8^3 volume");
    assert_eq!(get("active"), 0, "quiesced");
    assert_eq!(get("panics"), 0);
    assert_eq!(get("spills"), 0);
    assert_eq!(get("spill_hits"), 0);
    assert_eq!(get("spill_corrupt"), 0);

    // The line is a formatter over the same snapshot the metrics verb
    // exposes: every key agrees with its server.* gauge.
    let snap = svc.metrics_snapshot();
    assert_eq!(snap.gauge("server.sched.submitted"), get("submitted"));
    assert_eq!(snap.gauge("server.cache.hits"), get("cache_hits"));
    assert_eq!(snap.gauge("server.cache.misses"), get("cache_misses"));
    assert_eq!(snap.gauge("server.cache.resident_bytes"), get("resident_bytes"));
    assert_eq!(snap.gauge("server.active"), get("active"));
    assert_eq!(snap.gauge("server.panics"), get("panics"));

    svc.drain(Duration::from_secs(5));
}

#[test]
fn metrics_verb_returns_valid_prometheus_that_agrees_with_stats() {
    use sfc_repro::harness::validate_prometheus_text;

    let (svc, addr, flag, handle) = start_server(ServiceConfig {
        exec_threads: EXEC_THREADS,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    client.set_timeout(Duration::from_secs(30)).expect("timeout");
    let (header, _) = client
        .request_line("filter tenant=t size=8 seed=5 radius=1")
        .expect("reply");
    assert!(matches!(header, RespHeader::Ok(_)));

    // Quiesce so stats and the scrape observe the same settled state.
    let t0 = Instant::now();
    while svc.active_requests() > 0 && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(2));
    }

    let stats = client.send_line("stats").expect("stats");
    let text = client.scrape_metrics().expect("metrics verb");
    let samples = validate_prometheus_text(&text).expect("valid Prometheus exposition");
    assert!(samples > 20, "expected a real scrape, got {samples} samples");

    // Core families are present from boot, even at zero.
    for family in [
        "sfc_engine_units_completed_total",
        "sfc_filters_nan_events_total",
        "sfc_volrend_nan_samples_total",
        "sfc_deadline_shed_total",
        "sfc_store_repairs_total",
        "sfc_server_lane_panics_total",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(family)),
            "missing family {family} in scrape"
        );
    }

    // Shared quantities agree between the stats line and the scrape.
    let pairs = parse_stats_line(&stats);
    let stat = |k: &str| pairs.iter().find(|(key, _)| key == k).expect("stat key").1;
    let sample = |name: &str| -> i64 {
        text.lines()
            .find(|l| {
                l.split_whitespace().next() == Some(name)
            })
            .unwrap_or_else(|| panic!("sample {name} missing"))
            .split_whitespace()
            .nth(1)
            .expect("sample value")
            .parse()
            .expect("integer sample")
    };
    for (stat_key, metric) in [
        ("submitted", "sfc_server_sched_submitted"),
        ("served", "sfc_server_sched_served"),
        ("cache_hits", "sfc_server_cache_hits"),
        ("cache_misses", "sfc_server_cache_misses"),
        ("resident_bytes", "sfc_server_cache_resident_bytes"),
        ("active", "sfc_server_active"),
        ("panics", "sfc_server_panics"),
    ] {
        assert_eq!(
            stat(stat_key),
            sample(metric),
            "stats key {stat_key} disagrees with scrape sample {metric}"
        );
    }

    stop_server(&svc, &flag, handle);
}
